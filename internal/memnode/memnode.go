// Package memnode implements the far-memory node of §5.2 as a real
// network service: a daemon that accepts region-registration requests and
// serves one-sided page reads and writes, plus the matching client.
//
// On the paper's testbed this role is played by a passive VM whose memory
// is registered with an RDMA NIC; here the transport is TCP (the only
// fabric available to a pure-Go artifact), but the protocol mirrors the
// verbs the paging systems need: REGISTER (memory-region setup), READ and
// WRITE at arbitrary offsets, and STAT for monitoring. Region storage is
// allocated in 2 MiB chunks, mirroring the HugeTLB backing the paper uses
// to keep page-table walks cheap on the memory node.
//
// The wire protocol is length-prefixed binary, little-endian:
//
//	request:  op(1) regionID(8) offset(8) length(8) payload(length, WRITE only)
//	response: status(1) length(8) payload(length)
package memnode

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"        //magevet:ok memnode is a real TCP daemon, not virtual-time simulation code
	"sync/atomic" //magevet:ok memnode is a real TCP daemon, not virtual-time simulation code
)

// Opcodes.
const (
	opRegister = 1
	opRead     = 2
	opWrite    = 3
	opStat     = 4
)

// Status codes.
const (
	statusOK = 0
	// statusErr is a terminal error: the request was understood and
	// rejected (bad bounds, capacity, bad opcode). Retrying is useless.
	statusErr = 1
	// statusErrRegion means the region ID is unknown — after a server
	// restart every pre-crash region reads this way. The client reacts
	// by replaying the REGISTER for its stable handle and retrying; page
	// ops are idempotent so the replay is safe.
	statusErrRegion = 2
)

// ChunkBytes is the backing allocation granularity (a 2 MiB huge page).
const ChunkBytes = 2 << 20

// MaxIO bounds a single READ/WRITE payload.
const MaxIO = 8 << 20

// Server is the far-memory node daemon.
type Server struct {
	ln       net.Listener
	mu       sync.Mutex
	regions  map[uint64][][]byte // regionID -> chunks
	sizes    map[uint64]int64
	nextID   uint64
	capacity int64
	used     int64

	// conns tracks live connections so Close can unblock handlers
	// parked in ReadFull on idle clients.
	conns map[net.Conn]struct{}

	// Stats (atomic; served by STAT).
	ReadOps    atomic.Uint64
	WriteOps   atomic.Uint64
	BytesRead  atomic.Uint64
	BytesWrite atomic.Uint64

	wg     sync.WaitGroup
	closed atomic.Bool
}

// NewServer listens on addr (e.g. "127.0.0.1:0") with a total capacity in
// bytes.
func NewServer(addr string, capacity int64) (*Server, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("memnode: invalid capacity %d", capacity)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("memnode: listen: %w", err)
	}
	s := &Server{
		ln:       ln,
		regions:  make(map[uint64][][]byte),
		sizes:    make(map[uint64]int64),
		nextID:   1,
		capacity: capacity,
		conns:    make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop() //magevet:ok real network daemon: one accept loop per server
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and waits for connection handlers to finish.
// Live connections are closed so handlers parked mid-read return.
func (s *Server) Close() error {
	s.closed.Store(true)
	err := s.ln.Close()
	s.mu.Lock()
	for conn := range s.conns { //magevet:ok close-all: each conn is closed exactly once, order cannot matter
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		//magevet:ok real network daemon: one handler goroutine per connection
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.serve(conn)
		}()
	}
}

func (s *Server) serve(conn net.Conn) {
	hdr := make([]byte, 25)
	for {
		if _, err := io.ReadFull(conn, hdr); err != nil {
			return
		}
		op := hdr[0]
		regionID := binary.LittleEndian.Uint64(hdr[1:9])
		offset := int64(binary.LittleEndian.Uint64(hdr[9:17]))
		length := int64(binary.LittleEndian.Uint64(hdr[17:25]))

		var err error
		switch op {
		case opRegister:
			err = s.handleRegister(conn, length)
		case opRead:
			err = s.handleRead(conn, regionID, offset, length)
		case opWrite:
			err = s.handleWrite(conn, regionID, offset, length)
		case opStat:
			err = s.handleStat(conn)
		default:
			err = respondErr(conn, fmt.Sprintf("bad opcode %d", op))
		}
		if err != nil {
			return
		}
	}
}

func respond(conn net.Conn, payload []byte) error {
	hdr := make([]byte, 9)
	hdr[0] = statusOK
	binary.LittleEndian.PutUint64(hdr[1:], uint64(len(payload)))
	if _, err := conn.Write(hdr); err != nil {
		return err
	}
	if len(payload) > 0 {
		_, err := conn.Write(payload)
		return err
	}
	return nil
}

func respondErr(conn net.Conn, msg string) error {
	return respondErrCode(conn, statusErr, msg)
}

func respondErrCode(conn net.Conn, code byte, msg string) error {
	hdr := make([]byte, 9)
	hdr[0] = code
	binary.LittleEndian.PutUint64(hdr[1:], uint64(len(msg)))
	if _, err := conn.Write(hdr); err != nil {
		return err
	}
	_, err := conn.Write([]byte(msg))
	return err
}

// errUnknownRegion marks lookups of region IDs the server has never
// issued (or lost in a restart); it maps to statusErrRegion on the wire.
var errUnknownRegion = errors.New("unknown region")

func (s *Server) handleRegister(conn net.Conn, size int64) error {
	// Bounds-check before any allocation: size is attacker-controlled
	// wire input, and size > capacity also rules out the used+size
	// overflow a huge value could otherwise trigger.
	if size <= 0 || size > s.capacity {
		return respondErr(conn, fmt.Sprintf("register: bad size %d (capacity %d)", size, s.capacity))
	}
	s.mu.Lock()
	if s.used+size > s.capacity {
		s.mu.Unlock()
		return respondErr(conn, "register: capacity exhausted")
	}
	id := s.nextID
	s.nextID++
	nChunks := int((size + ChunkBytes - 1) / ChunkBytes)
	chunks := make([][]byte, nChunks)
	for i := range chunks {
		chunks[i] = make([]byte, ChunkBytes)
	}
	s.regions[id] = chunks
	s.sizes[id] = size
	s.used += size
	s.mu.Unlock()

	resp := make([]byte, 8)
	binary.LittleEndian.PutUint64(resp, id)
	return respond(conn, resp)
}

// regionAt validates and returns the chunk list for an IO.
func (s *Server) regionAt(regionID uint64, offset, length int64) ([][]byte, error) {
	if length <= 0 || length > MaxIO {
		return nil, fmt.Errorf("bad length %d", length)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	chunks, ok := s.regions[regionID]
	if !ok {
		return nil, fmt.Errorf("%w %d", errUnknownRegion, regionID)
	}
	if offset < 0 || offset+length > s.sizes[regionID] {
		return nil, fmt.Errorf("out of bounds [%d,%d) in %d", offset, offset+length, s.sizes[regionID])
	}
	return chunks, nil
}

// errStatus maps a validation error to its wire status code.
func errStatus(err error) byte {
	if errors.Is(err, errUnknownRegion) {
		return statusErrRegion
	}
	return statusErr
}

func chunkedCopy(chunks [][]byte, offset int64, buf []byte, toRegion bool) {
	for len(buf) > 0 {
		ci := offset / ChunkBytes
		co := offset % ChunkBytes
		n := int64(len(buf))
		if rem := ChunkBytes - co; n > rem {
			n = rem
		}
		if toRegion {
			copy(chunks[ci][co:co+n], buf[:n])
		} else {
			copy(buf[:n], chunks[ci][co:co+n])
		}
		buf = buf[n:]
		offset += n
	}
}

func (s *Server) handleRead(conn net.Conn, regionID uint64, offset, length int64) error {
	chunks, err := s.regionAt(regionID, offset, length)
	if err != nil {
		return respondErrCode(conn, errStatus(err), err.Error())
	}
	buf := make([]byte, length)
	chunkedCopy(chunks, offset, buf, false)
	s.ReadOps.Add(1)
	s.BytesRead.Add(uint64(length))
	return respond(conn, buf)
}

func (s *Server) handleWrite(conn net.Conn, regionID uint64, offset, length int64) error {
	if length <= 0 || length > MaxIO {
		return respondErr(conn, fmt.Sprintf("bad length %d", length))
	}
	buf := make([]byte, length)
	if _, err := io.ReadFull(conn, buf); err != nil {
		return err
	}
	chunks, err := s.regionAt(regionID, offset, length)
	if err != nil {
		return respondErrCode(conn, errStatus(err), err.Error())
	}
	chunkedCopy(chunks, offset, buf, true)
	s.WriteOps.Add(1)
	s.BytesWrite.Add(uint64(length))
	return respond(conn, nil)
}

// Stats is the STAT response.
type Stats struct {
	Regions    uint64
	UsedBytes  uint64
	ReadOps    uint64
	WriteOps   uint64
	BytesRead  uint64
	BytesWrite uint64
}

func (s *Server) handleStat(conn net.Conn) error {
	s.mu.Lock()
	st := Stats{
		Regions:   uint64(len(s.regions)),
		UsedBytes: uint64(s.used),
	}
	s.mu.Unlock()
	st.ReadOps = s.ReadOps.Load()
	st.WriteOps = s.WriteOps.Load()
	st.BytesRead = s.BytesRead.Load()
	st.BytesWrite = s.BytesWrite.Load()
	buf := make([]byte, 48)
	binary.LittleEndian.PutUint64(buf[0:], st.Regions)
	binary.LittleEndian.PutUint64(buf[8:], st.UsedBytes)
	binary.LittleEndian.PutUint64(buf[16:], st.ReadOps)
	binary.LittleEndian.PutUint64(buf[24:], st.WriteOps)
	binary.LittleEndian.PutUint64(buf[32:], st.BytesRead)
	binary.LittleEndian.PutUint64(buf[40:], st.BytesWrite)
	return respond(conn, buf)
}
