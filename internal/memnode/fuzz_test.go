package memnode

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
)

// fuzzServer builds a listener-less Server with one pre-registered
// 4 MiB region (ID 1) so READ/WRITE frames can hit a real target.
func fuzzServer() *Server {
	s := &Server{
		regions:  make(map[uint64][][]byte),
		sizes:    make(map[uint64]int64),
		nextID:   2,
		capacity: 64 << 20,
		used:     4 << 20,
		conns:    make(map[net.Conn]struct{}),
	}
	s.regions[1] = [][]byte{make([]byte, ChunkBytes), make([]byte, ChunkBytes)}
	s.sizes[1] = 4 << 20
	return s
}

func frame(op byte, regionID uint64, offset, length int64, payload []byte) []byte {
	buf := make([]byte, 25+len(payload))
	buf[0] = op
	binary.LittleEndian.PutUint64(buf[1:], regionID)
	binary.LittleEndian.PutUint64(buf[9:], uint64(offset))
	binary.LittleEndian.PutUint64(buf[17:], uint64(length))
	copy(buf[25:], payload)
	return buf
}

// FuzzServeRequest feeds arbitrary byte streams straight into the
// request decoder. The server must never panic, never allocate
// unboundedly (bad lengths are rejected before allocation), and must
// always terminate the handler when the stream ends.
func FuzzServeRequest(f *testing.F) {
	// Seed corpus: one valid frame of each op, then hostile variants.
	f.Add(frame(opRegister, 0, 0, 1<<20, nil))
	f.Add(frame(opRead, 1, 4096, 4096, nil))
	f.Add(frame(opWrite, 1, 0, 8, []byte("pagedata")))
	f.Add(frame(opStat, 0, 0, 0, nil))
	f.Add(frame(opRead, 1, -4096, 4096, nil))                                     // negative offset
	f.Add(frame(opRead, 1, 0, MaxIO+1, nil))                                      // oversized read
	f.Add(frame(opWrite, 1, 0, 1<<40, nil))                                       // absurd write length
	f.Add(frame(opRegister, 0, 0, 1<<62, nil))                                    // absurd register size
	f.Add(frame(opRead, 999, 0, 4096, nil))                                       // unknown region
	f.Add(frame(0xEE, 0, 0, 0, nil))                                              // bad opcode
	f.Add([]byte{opWrite})                                                        // truncated header
	f.Add(append(frame(opWrite, 1, 0, 64, nil), "short"...))                      // truncated payload
	f.Add(append(frame(opStat, 0, 0, 0, nil), frame(opRead, 1, 0, 4096, nil)...)) // pipelined

	f.Fuzz(func(t *testing.T, data []byte) {
		s := fuzzServer()
		srvConn, cliConn := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			s.serve(srvConn)
			srvConn.Close()
		}()
		// Drain responses so serve never blocks on a full pipe.
		go io.Copy(io.Discard, cliConn)
		cliConn.Write(data)
		cliConn.Close()
		<-done
	})
}
