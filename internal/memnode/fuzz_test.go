package memnode

import (
	"encoding/binary"
	"io"
	"math"
	"net"
	"testing"
	"time"
)

// fuzzServer builds a listener-less Server with one pre-registered
// 4 MiB region (ID 1) so READ/WRITE frames can hit a real target.
func fuzzServer() *Server {
	s := &Server{
		regions:  make(map[uint64][][]byte),
		sizes:    make(map[uint64]int64),
		nextID:   2,
		capacity: 64 << 20,
		used:     4 << 20,
		conns:    make(map[net.Conn]struct{}),
	}
	// One worker: mutated inputs can put overlapping concurrent WRITEs on
	// the wire, which race by design (RDMA semantics); the fuzz target is
	// the frame decoder, so serialize execution to stay -race clean.
	s.opts.fillDefaults()
	s.opts.Workers = 1
	s.regions[1] = [][]byte{make([]byte, ChunkBytes), make([]byte, ChunkBytes)}
	s.sizes[1] = 4 << 20
	return s
}

func frame(op byte, regionID uint64, offset, length int64, payload []byte) []byte {
	buf := make([]byte, 25+len(payload))
	buf[0] = op
	binary.LittleEndian.PutUint64(buf[1:], regionID)
	binary.LittleEndian.PutUint64(buf[9:], uint64(offset))
	binary.LittleEndian.PutUint64(buf[17:], uint64(length))
	copy(buf[25:], payload)
	return buf
}

// helloFrame is the negotiation probe that upgrades a connection to v2.
func helloFrame() []byte {
	return frame(opHello, helloMagic, protoV2, 0, nil)
}

// v2frame builds one v2 request frame.
func v2frame(op byte, id, regionID uint64, offset, length int64, payload []byte) []byte {
	buf := make([]byte, v2ReqHdrLen+len(payload))
	buf[0] = op
	binary.LittleEndian.PutUint64(buf[1:], id)
	binary.LittleEndian.PutUint64(buf[9:], regionID)
	binary.LittleEndian.PutUint64(buf[17:], uint64(offset))
	binary.LittleEndian.PutUint64(buf[25:], uint64(length))
	copy(buf[v2ReqHdrLen:], payload)
	return buf
}

// v2stream prefixes frames with the HELLO so the server's decoder runs
// them through the v2 path.
func v2stream(frames ...[]byte) []byte {
	out := helloFrame()
	for _, f := range frames {
		out = append(out, f...)
	}
	return out
}

// descs encodes a batch descriptor table (count + offset/length pairs).
func descs(pairs ...int64) []byte {
	n := len(pairs) / 2
	buf := make([]byte, 8+16*n)
	binary.LittleEndian.PutUint64(buf, uint64(n))
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(buf[8+16*i:], uint64(pairs[2*i]))
		binary.LittleEndian.PutUint64(buf[16+16*i:], uint64(pairs[2*i+1]))
	}
	return buf
}

// FuzzServeRequest feeds arbitrary byte streams straight into the
// request decoder. The server must never panic, never allocate
// unboundedly (bad lengths are rejected before allocation), and must
// always terminate the handler when the stream ends.
func FuzzServeRequest(f *testing.F) {
	// Seed corpus: one valid frame of each op, then hostile variants.
	f.Add(frame(opRegister, 0, 0, 1<<20, nil))
	f.Add(frame(opRead, 1, 4096, 4096, nil))
	f.Add(frame(opWrite, 1, 0, 8, []byte("pagedata")))
	f.Add(frame(opStat, 0, 0, 0, nil))
	f.Add(frame(opRead, 1, -4096, 4096, nil))                                     // negative offset
	f.Add(frame(opRead, 1, 0, MaxIO+1, nil))                                      // oversized read
	f.Add(frame(opWrite, 1, 0, 1<<40, nil))                                       // absurd write length
	f.Add(frame(opRegister, 0, 0, 1<<62, nil))                                    // absurd register size
	f.Add(frame(opRead, 999, 0, 4096, nil))                                       // unknown region
	f.Add(frame(0xEE, 0, 0, 0, nil))                                              // bad opcode
	f.Add([]byte{opWrite})                                                        // truncated header
	f.Add(append(frame(opWrite, 1, 0, 64, nil), "short"...))                      // truncated payload
	f.Add(append(frame(opStat, 0, 0, 0, nil), frame(opRead, 1, 0, 4096, nil)...)) // pipelined

	// v2 seeds: negotiation plus pipelined/batched/hostile v2 frames.
	// Concurrent seeds deliberately avoid overlapping WRITE ranges — the
	// worker pool executes them in parallel and overlapping writes race
	// by design (as one-sided RDMA would).
	f.Add(helloFrame())                                  // bare negotiation
	f.Add(frame(opHello, helloMagic, protoV1, 0, nil))   // stale version: stays v1
	f.Add(frame(opHello, 0xDEAD_BEEF, protoV2, 0, nil))  // bad magic: stays v1
	f.Add(v2stream(v2frame(opRead, 1, 1, 0, 4096, nil))) // valid v2 read
	f.Add(v2stream(v2frame(opStat, 2, 0, 0, 0, nil)))    // valid v2 stat
	f.Add(v2stream(v2frame(opRegister, 3, 0, 0, 1<<20, nil)))
	f.Add(v2stream(v2frame(opWrite, 4, 1, 0, 8, []byte("pagedata"))))
	f.Add(v2stream( // interleaved ids, disjoint pages
		v2frame(opWrite, 5, 1, 0, 8, []byte("pagedata")),
		v2frame(opRead, 7, 1, 8192, 4096, nil),
		v2frame(opWrite, 6, 1, 4096, 8, []byte("pagedata")),
	))
	f.Add(v2stream(v2frame(opReadV, 8, 1, 0, 40, descs(0, 4096, 8192, 4096)))) // valid batch read
	d := descs(0, 4096)
	f.Add(v2stream(v2frame(opWriteV, 9, 1, 0, int64(len(d))+4096, append(d, make([]byte, 4096)...)))) // valid batch write
	f.Add(v2stream(v2frame(opReadV, 10, 1, 0, 40, descs(0, 4096, 1<<40, 4096))))                      // out-of-bounds descriptor
	f.Add(v2stream(v2frame(opReadV, 11, 1, 0, 40, descs(0, MaxIO+1))))                                // oversized descriptor
	f.Add(v2stream(v2frame(opReadV, 12, 1, 0, 24, descs(0, 4096)[:24])))                              // truncated descriptors
	bigCount := make([]byte, 16)
	binary.LittleEndian.PutUint64(bigCount, 1<<40) // absurd batch count
	f.Add(v2stream(v2frame(opReadV, 13, 1, 0, 16, bigCount)))
	f.Add(v2stream(v2frame(opWriteV, 14, 1, 0, int64(len(d)), d)))        // descriptors but no data
	f.Add(v2stream(v2frame(opWrite, 15, 1, 0, maxV2Payload+1, nil)))      // framing violation: kills conn
	f.Add(v2stream(v2frame(opWrite, 16, 1, 0, -1, nil)))                  // negative payload length
	f.Add(v2stream(v2frame(0xEE, 17, 0, 0, 0, nil)))                      // bad v2 opcode
	f.Add(v2stream(v2frame(opRead, 18, 1, 0, 4096, nil)[:v2ReqHdrLen-3])) // truncated v2 header
	f.Add(v2stream(v2frame(opRead, 19, 999, 0, 4096, nil)))               // unknown region via v2
	f.Add(v2stream(v2frame(opHello, 20, helloMagic, protoV2, 0, nil)))    // HELLO inside v2: bad opcode
	// off+length overflow seeds: an offset near MaxInt64 wraps the naive
	// bounds sum negative, so these must be rejected, not executed.
	f.Add(frame(opRead, 1, math.MaxInt64-100, 4096, nil))
	f.Add(v2stream(v2frame(opRead, 21, 1, math.MaxInt64-100, 4096, nil)))
	f.Add(v2stream(v2frame(opReadV, 22, 1, 0, 24, descs(math.MaxInt64-100, 4096))))
	dov := descs(math.MaxInt64-100, 4096)
	f.Add(v2stream(v2frame(opWriteV, 23, 1, 0, int64(len(dov))+4096, append(dov, make([]byte, 4096)...))))

	f.Fuzz(func(t *testing.T, data []byte) {
		s := fuzzServer()
		srvConn, cliConn := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			s.serve(srvConn)
			srvConn.Close()
		}()
		// Drain responses so serve never blocks on a full pipe.
		go io.Copy(io.Discard, cliConn)
		cliConn.Write(data)
		cliConn.Close()
		<-done
	})
}

// v2resp builds one v2 response frame as a hostile server would emit it.
func v2respFrame(status byte, id uint64, payload []byte) []byte {
	buf := make([]byte, v2RespHdrLen+len(payload))
	buf[0] = status
	binary.LittleEndian.PutUint64(buf[1:], id)
	binary.LittleEndian.PutUint64(buf[9:], uint64(len(payload)))
	copy(buf[v2RespHdrLen:], payload)
	return buf
}

// FuzzClientDemux points a real pipelined client at a fake server that
// negotiates v2 and then replays arbitrary bytes as the response
// stream. The demux must never panic, never deliver a frame to the
// wrong call, and must resolve every pending op (success or error)
// even when the stream is garbage — duplicate IDs, unknown IDs,
// truncated or oversized frames all poison the stream, which fails all
// pending calls and surfaces a terminal error through the retry layer.
func FuzzClientDemux(f *testing.F) {
	page := make([]byte, 4096)
	// Clean completions for the three reads the harness issues (ids 1-3).
	f.Add(append(append(v2respFrame(statusOK, 1, page), v2respFrame(statusOK, 2, page)...), v2respFrame(statusOK, 3, page)...))
	// Out-of-order completion.
	f.Add(append(append(v2respFrame(statusOK, 3, page), v2respFrame(statusOK, 1, page)...), v2respFrame(statusOK, 2, page)...))
	// Unknown ID.
	f.Add(v2respFrame(statusOK, 999, page))
	// Duplicate ID.
	f.Add(append(v2respFrame(statusOK, 1, page), v2respFrame(statusOK, 1, page)...))
	// Error statuses.
	f.Add(v2respFrame(statusErr, 1, []byte("boom")))
	f.Add(v2respFrame(statusErrRegion, 2, []byte("unknown region")))
	// Truncated header / truncated payload / oversized length.
	f.Add(v2respFrame(statusOK, 1, page)[:5])
	f.Add(v2respFrame(statusOK, 1, page)[:v2RespHdrLen+100])
	huge := v2respFrame(statusOK, 1, nil)
	binary.LittleEndian.PutUint64(huge[9:], maxV2Payload+1)
	f.Add(huge)
	// Interleaved valid and garbage.
	f.Add(append(v2respFrame(statusOK, 2, page), 0xFF, 0x00, 0xAB))

	f.Fuzz(func(t *testing.T, data []byte) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Skip(err)
		}
		defer ln.Close()
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				go func() {
					defer conn.Close()
					hdr := make([]byte, v1ReqHdrLen)
					if _, err := io.ReadFull(conn, hdr); err != nil {
						return
					}
					resp := make([]byte, v1RespHdrLen+helloRespLen)
					resp[0] = statusOK
					binary.LittleEndian.PutUint64(resp[1:], helloRespLen)
					binary.LittleEndian.PutUint64(resp[v1RespHdrLen:], helloMagic)
					binary.LittleEndian.PutUint64(resp[v1RespHdrLen+8:], protoV2)
					if _, err := conn.Write(resp); err != nil {
						return
					}
					// Replay the fuzz bytes as the response stream, then
					// hang up so pending calls fail fast.
					conn.Write(data)
				}()
			}
		}()

		opts := DefaultOptions()
		opts.IOTimeout = 200 * time.Millisecond
		opts.MaxAttempts = 2
		opts.BaseBackoff = time.Millisecond
		opts.MaxBackoff = 2 * time.Millisecond
		c, err := DialOptions(ln.Addr().String(), opts)
		if err != nil {
			t.Skip(err)
		}
		defer c.Close()
		pend := []*Pending{
			c.ReadAsync(1, 0, 4096),
			c.ReadAsync(1, 4096, 4096),
			c.ReadAsync(1, 8192, 4096),
		}
		for _, p := range pend {
			select {
			case <-p.Done():
				if body, err := p.Wait(); err == nil {
					if len(body) != 4096 {
						t.Fatalf("demux delivered %d bytes for a 4096-byte read", len(body))
					}
					PutBuf(body)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("pending op hung on a hostile response stream")
			}
		}
	})
}
