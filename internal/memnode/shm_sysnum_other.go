//go:build linux && !amd64 && !arm64

package memnode

// No memfd_create number carried for this architecture; the unlinked
// tmpfile fallback in shmCreateSegment is used instead.
const sysMemfdCreate uintptr = 0
