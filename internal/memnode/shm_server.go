// Shared-memory transport: server side.
//
// The server announces shm support in its HELLO response (a unix-domain
// socket path plus a per-server token). A client that wants the shm
// data plane dials that socket, proves it spoke to this server instance
// by echoing the token, and receives a freshly created memfd segment
// via SCM_RIGHTS. From then on the unix connection carries only
// doorbell bytes and peer-death notification (EOF); all requests,
// responses, and page data move through the mapped segment.
//
// Execution reuses the same region store and validation helpers as the
// TCP paths (doRegister/regionAt/regionForBatch/chunkedCopy/doStat), so
// the two transports cannot drift semantically. Safety against a
// hostile peer sharing the mapping:
//
//   - extents are bounds-checked against the arena before any access
//     (unsigned subtracted form), so no descriptor can point the server
//     outside its own mapping;
//   - descriptor tables are copied into private memory before parsing,
//     so a client racing writes into the arena cannot change a table
//     between validation and use (TOCTOU);
//   - implausible ring indices poison the connection (close + unmap),
//     never index out of bounds;
//   - region validation failures are reported as status errors through
//     the completion ring, exactly like TCP, so an honest client's
//     errors keep flowing even while another extent is being abused.
package memnode

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"time"
)

// Shm handshake framing (unix socket, little-endian).
const (
	shmHelloReqLen  = 24 // magic(8) token(8) window(8)
	shmHelloRespLen = 33 // status(1) entries(8) arenaOff(8) arenaBytes(8) segBytes(8); refusal: status(1) msgLen(1) msg(≤31)
	shmMaxWindow    = 1 << 16
)

// shmTableMax bounds a READV/WRITEV descriptor table.
const shmTableMax = 8 + 16*MaxBatchPages

// serveShmConn runs one shm connection: handshake (create + pass the
// segment), then the submission-ring consumer loop until the peer dies,
// the ring turns hostile, or the server closes.
func (s *Server) serveShmConn(uc *net.UnixConn) {
	// The handshake is bounded so a dialer that never speaks cannot park
	// a handler forever.
	_ = uc.SetDeadline(time.Now().Add(5 * time.Second)) //magevet:ok handshake deadline on a real unix socket
	var req [shmHelloReqLen]byte
	if _, err := readFullConn(uc, req[:]); err != nil {
		return
	}
	magic := binary.LittleEndian.Uint64(req[0:])
	token := binary.LittleEndian.Uint64(req[8:])
	window := int64(binary.LittleEndian.Uint64(req[16:]))
	if magic != shmHelloMagic || token != s.shmToken {
		_ = writeShmRefusal(uc, "bad shm hello")
		return
	}
	if window < 1 || window > shmMaxWindow {
		_ = writeShmRefusal(uc, fmt.Sprintf("bad window %d", window))
		return
	}
	layout := shmLayoutFor(int(window), s.opts.ShmArenaBytes, s.shmToken)
	fd, err := shmCreateSegment(layout.segBytes)
	if err != nil {
		_ = writeShmRefusal(uc, "segment creation failed")
		return
	}
	seg, err := shmMap(fd, layout.segBytes)
	if err != nil {
		_ = closeFd(fd)
		_ = writeShmRefusal(uc, "segment map failed")
		return
	}
	layout.stamp(seg)
	var resp [shmHelloRespLen]byte
	resp[0] = statusOK
	binary.LittleEndian.PutUint64(resp[1:], layout.entries)
	binary.LittleEndian.PutUint64(resp[9:], uint64(layout.arenaOff))
	binary.LittleEndian.PutUint64(resp[17:], uint64(layout.arenaBytes))
	binary.LittleEndian.PutUint64(resp[25:], uint64(layout.segBytes))
	err = shmSendFd(uc, resp[:], fd)
	_ = closeFd(fd) // both sides hold mappings (or the send failed); the fd itself is done
	if err != nil {
		shmUnmap(seg)
		return
	}
	_ = uc.SetDeadline(time.Time{}) // steady state: reads block until doorbell or peer death
	h := &shmConn{
		s:     s,
		conn:  uc,
		seg:   seg,
		arena: seg[layout.arenaOff : layout.arenaOff+layout.arenaBytes],
		sq:    newShmRing(seg, shmHdrBytes, layout.entries, shmOffSqCons, shmOffSqProd),
		cq:    newShmRing(seg, shmHdrBytes+int64(layout.entries)*shmSlotBytes, layout.entries, shmOffCqProd, shmOffCqCons),
	}
	h.srvSleep = shmWord(seg, shmOffSrvSleep)
	h.cliSleep = shmWord(seg, shmOffCliSleep)
	h.loop()
	shmUnmap(seg)
}

func writeShmRefusal(uc *net.UnixConn, msg string) error {
	var resp [shmHelloRespLen]byte
	resp[0] = statusErr
	if len(msg) > 31 {
		msg = msg[:31]
	}
	resp[1] = byte(len(msg))
	copy(resp[2:], msg)
	_, err := uc.Write(resp[:])
	return err
}

// readFullConn is io.ReadFull without the bufio layer the TCP paths use.
func readFullConn(conn net.Conn, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := conn.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// shmConn is one live shm connection on the server.
type shmConn struct {
	s     *Server
	conn  *net.UnixConn
	seg   []byte
	arena []byte
	sq    shmRing // consumer view of the submission ring
	cq    shmRing // producer view of the completion ring

	srvSleep *uint64
	cliSleep *uint64
}

// loop consumes submissions until the connection dies. Between bursts
// it spins briefly (yielding so a same-core client can run), then
// parks on a doorbell read — which is also how peer death (EOF) and
// server shutdown (Close closes the conn) are detected.
func (h *shmConn) loop() {
	var db [1]byte
	for {
		n, err := h.process()
		if err != nil {
			return // hostile ring state: poison the connection
		}
		if n > 0 {
			continue
		}
		spun := false
		for i := 0; i < shmSpinYields; i++ {
			runtime.Gosched()
			if avail, err := h.sq.available(); err != nil {
				return
			} else if avail > 0 {
				spun = true
				break
			}
		}
		if spun {
			continue
		}
		shmAnnounceSleep(h.srvSleep)
		if avail, err := h.sq.available(); err != nil {
			return
		} else if avail > 0 {
			shmCancelSleep(h.srvSleep)
			continue
		}
		if _, err := h.conn.Read(db[:]); err != nil {
			return // peer death or server Close
		}
		shmCancelSleep(h.srvSleep)
	}
}

// process consumes every available submission, executes it, and
// publishes its completion. A non-nil error means the ring state or a
// descriptor was hostile and the connection must be poisoned.
func (h *shmConn) process() (int, error) {
	avail, err := h.sq.available()
	if err != nil {
		return 0, err
	}
	done := 0
	// Submission-consumer index publication is batched: one shared store
	// per burst (the client's full-check lags by at most one burst, which
	// a 2x-window ring absorbs). Completions still publish per entry so
	// the client can start draining while the burst is in progress.
	defer h.sq.commit()
	for i := uint64(0); i < avail; i++ {
		e := decodeSQE(h.sq.slot(h.sq.local))
		h.sq.advanceLocal()
		if !extentInArena(e.extOff, e.extCap, int64(len(h.arena))) {
			return done, fmt.Errorf("shm: extent [%d,+%d) outside arena %d", e.extOff, e.extCap, len(h.arena))
		}
		status, n := h.exec(e)
		if err := h.complete(cqEntry{status: status, id: e.id, length: n}); err != nil {
			return done, err
		}
		done++
	}
	if done > 0 && shmShouldWake(h.cliSleep) {
		_ = h.conn.SetWriteDeadline(time.Now().Add(5 * time.Second)) //magevet:ok doorbell write bound on a real unix socket
		if _, err := h.conn.Write([]byte{1}); err != nil {
			return done, err
		}
	}
	return done, nil
}

// complete publishes one completion entry, waiting briefly if the ring
// is full. An honestly sized ring (2x the window) cannot fill, so a
// persistent full state means the client stopped consuming and the
// connection is poisoned.
func (h *shmConn) complete(e cqEntry) error {
	for waited := 0; ; waited++ {
		full, err := h.cq.full()
		if err != nil {
			return err
		}
		if !full {
			break
		}
		if waited < 1024 {
			runtime.Gosched()
			continue
		}
		if waited > 1024+5000 {
			return fmt.Errorf("shm: completion ring full, client not consuming")
		}
		time.Sleep(time.Millisecond) //magevet:ok shm backpressure: bounded 5s stall budget before poisoning
	}
	encodeCQE(h.cq.slot(h.cq.local), e)
	h.cq.publish()
	return nil
}

// exec runs one validated-extent submission against the region store
// and returns the completion status and response length. All response
// bytes (data, REGISTER ids, STAT blobs, error messages) land in the
// submission's own extent.
func (h *shmConn) exec(e sqEntry) (byte, int64) {
	s := h.s
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	ext := h.arena[e.extOff : e.extOff+e.extCap]
	switch e.op {
	case opRegister:
		body, code, msg := s.doRegister(e.length)
		if code != statusOK {
			return shmErr(ext, code, msg)
		}
		if len(body) > len(ext) {
			return shmErr(ext, statusErr, "register: extent too small")
		}
		return statusOK, int64(copy(ext, body))
	case opRead:
		if e.length <= 0 || e.length > int64(len(ext)) {
			return shmErr(ext, statusErr, fmt.Sprintf("bad length %d for extent %d", e.length, len(ext)))
		}
		chunks, err := s.regionAt(e.regionID, e.offset, e.length)
		if err != nil {
			return shmErr(ext, errStatus(err), err.Error())
		}
		chunkedCopy(chunks, e.offset, ext[:e.length], false)
		s.ReadOps.Add(1)
		s.BytesRead.Add(uint64(e.length))
		return statusOK, e.length
	case opWrite:
		if e.length <= 0 || e.length > MaxIO || e.length > int64(len(ext)) {
			return shmErr(ext, statusErr, fmt.Sprintf("bad length %d", e.length))
		}
		// The copy source aliases client-writable memory: a client racing
		// its own write tears its own data, exactly as one-sided RDMA
		// would; the server-side bounds are already pinned.
		code, msg := s.doWrite(e.regionID, e.offset, ext[:e.length])
		if code != statusOK {
			return shmErr(ext, code, msg)
		}
		return statusOK, 0
	case opReadV:
		// length = descriptor table bytes; the response data overwrites
		// the extent from the start.
		if e.length < 8 || e.length > shmTableMax || e.length > int64(len(ext)) {
			return shmErr(ext, statusErr, fmt.Sprintf("readv: bad table length %d", e.length))
		}
		tbl := getBuf(int(e.length))
		copy(tbl, ext[:e.length]) // private copy: the table must not change between parse and use
		iovs, consumed, total, err := parseIovecs(tbl)
		if err == nil && consumed != len(tbl) {
			err = fmt.Errorf("readv: %d trailing table bytes", len(tbl)-consumed)
		}
		PutBuf(tbl)
		if err != nil {
			return shmErr(ext, statusErr, err.Error())
		}
		if total > int64(len(ext)) {
			return shmErr(ext, statusErr, fmt.Sprintf("readv: %d bytes exceed extent %d", total, len(ext)))
		}
		chunks, err := s.regionForBatch(e.regionID, iovs)
		if err != nil {
			return shmErr(ext, errStatus(err), err.Error())
		}
		out := ext[:total]
		for _, v := range iovs {
			chunkedCopy(chunks, v.off, out[:v.length], false)
			out = out[v.length:]
		}
		s.ReadOps.Add(uint64(len(iovs)))
		s.BytesRead.Add(uint64(total))
		return statusOK, total
	case opWriteV:
		// length = table + concatenated data bytes.
		if e.length < 8 || e.length > int64(len(ext)) {
			return shmErr(ext, statusErr, fmt.Sprintf("writev: bad payload length %d", e.length))
		}
		var cnt [8]byte
		copy(cnt[:], ext[:8])
		n := binary.LittleEndian.Uint64(cnt[:])
		if n == 0 || n > MaxBatchPages {
			return shmErr(ext, statusErr, fmt.Sprintf("batch: bad page count %d (max %d)", n, MaxBatchPages))
		}
		tblLen := int64(8 + 16*n)
		if tblLen > e.length {
			return shmErr(ext, statusErr, fmt.Sprintf("writev: table %d exceeds payload %d", tblLen, e.length))
		}
		tbl := getBuf(int(tblLen))
		copy(tbl, ext[:tblLen]) // private copy: see opReadV
		iovs, _, total, err := parseIovecs(tbl)
		PutBuf(tbl)
		if err != nil {
			return shmErr(ext, statusErr, err.Error())
		}
		data := ext[tblLen:e.length]
		if int64(len(data)) != total {
			return shmErr(ext, statusErr, fmt.Sprintf("writev: descriptors cover %d bytes, payload carries %d", total, len(data)))
		}
		chunks, err := s.regionForBatch(e.regionID, iovs)
		if err != nil {
			return shmErr(ext, errStatus(err), err.Error())
		}
		for _, v := range iovs {
			chunkedCopy(chunks, v.off, data[:v.length], true)
			data = data[v.length:]
		}
		s.WriteOps.Add(uint64(len(iovs)))
		s.BytesWrite.Add(uint64(total))
		return statusOK, 0
	case opStat:
		body := s.doStat()
		if len(body) > len(ext) {
			return shmErr(ext, statusErr, "stat: extent too small")
		}
		return statusOK, int64(copy(ext, body))
	case opProbe:
		body := s.doProbe()
		if len(body) > len(ext) {
			return shmErr(ext, statusErr, "stats: extent too small")
		}
		return statusOK, int64(copy(ext, body))
	case opUnregister:
		code, msg := s.doUnregister(e.regionID)
		if code != statusOK {
			return shmErr(ext, code, msg)
		}
		return statusOK, 0
	default:
		return shmErr(ext, statusErr, fmt.Sprintf("bad opcode %d", e.op))
	}
}

// shmErr writes an error message into the extent (truncating to fit)
// and returns the completion fields for it.
func shmErr(ext []byte, code byte, msg string) (byte, int64) {
	n := copy(ext, msg)
	return code, int64(n)
}

// setupShm creates the shm negotiation socket and the per-server token
// clients must echo to prove they negotiated against this instance (a
// restarted server mints a new token, so stale clients re-negotiate
// over TCP instead of attaching to the wrong segment namespace).
func (s *Server) setupShm() error {
	if !shmSupported {
		return fmt.Errorf("memnode: shm transport unsupported on this platform")
	}
	var tok [8]byte
	if _, err := cryptorand.Read(tok[:]); err != nil {
		return fmt.Errorf("memnode: shm token: %w", err)
	}
	s.shmToken = binary.LittleEndian.Uint64(tok[:])
	path := s.opts.ShmPath
	if path == "" {
		_, port, err := net.SplitHostPort(s.ln.Addr().String())
		if err != nil {
			port = "0"
		}
		path = filepath.Join(os.TempDir(), "memnode-shm-"+port+".sock")
	}
	// A stale socket file from a previous (dead) server at the same
	// address would fail the listen; remove it. A restarted server
	// reusing the port lands on the same path, which is exactly what the
	// chaos/reconnect path needs.
	_ = os.Remove(path) // best-effort: ListenUnix reports any real problem
	ln, err := net.ListenUnix("unix", &net.UnixAddr{Name: path, Net: "unix"})
	if err != nil {
		return fmt.Errorf("memnode: shm listen: %w", err)
	}
	s.shmLn = ln
	s.shmPath = path
	return nil
}

// ShmAddr returns the shm negotiation socket path, or "" when the shm
// transport is disabled.
func (s *Server) ShmAddr() string { return s.shmPath }

// shmAcceptLoop accepts shm negotiation connections, mirroring the TCP
// accept loop (tracked in conns so Close unblocks parked handlers).
func (s *Server) shmAcceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.shmLn.AcceptUnix()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			_ = conn.Close() // server is closing; best-effort teardown
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		//magevet:ok real network daemon: one handler goroutine per shm connection
		go func() {
			defer s.wg.Done()
			defer func() {
				_ = conn.Close() // handler is done; best-effort teardown
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.serveShmConn(conn)
		}()
	}
}

// helloBody builds the v2 HELLO response payload: the mandatory
// magic+version, then — when the shm transport is live — a flags word,
// the per-server token, and the negotiation socket path. Clients that
// predate the extension validate only the first 16 bytes and ignore
// the rest, so advertising shm is invisible to them.
func (s *Server) helloBody() []byte {
	if s.shmLn == nil {
		resp := make([]byte, helloRespLen)
		binary.LittleEndian.PutUint64(resp[0:], helloMagic)
		binary.LittleEndian.PutUint64(resp[8:], protoV2)
		return resp
	}
	path := s.shmPath
	resp := make([]byte, helloRespLen+8+8+2+len(path))
	binary.LittleEndian.PutUint64(resp[0:], helloMagic)
	binary.LittleEndian.PutUint64(resp[8:], protoV2)
	binary.LittleEndian.PutUint64(resp[16:], helloFlagShm)
	binary.LittleEndian.PutUint64(resp[24:], s.shmToken)
	binary.LittleEndian.PutUint16(resp[32:], uint16(len(path)))
	copy(resp[34:], path)
	return resp
}
