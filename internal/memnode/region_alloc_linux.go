//go:build linux

package memnode

import (
	"syscall"
	"unsafe"
)

func sliceAddr(b []byte) unsafe.Pointer { return unsafe.Pointer(unsafe.SliceData(b)) }

// allocRegionChunks backs a region with one anonymous mapping aligned
// to ChunkBytes and advised MADV_HUGEPAGE, carved into ChunkBytes
// chunks. Heap chunks from make() are almost never 2 MiB-aligned, so
// under the kernel's default THP mode (madvise) they stay on 4 KiB
// pages and every random page copy pays a TLB walk over the whole
// region; an aligned, advised mapping lets the kernel back the region
// with huge pages, which measurably speeds the region<->arena/socket
// copy that both transports bottleneck on. Falls back to heap chunks
// if mmap fails (e.g. strict overcommit). The returned release frees
// the mapping; it is nil for heap chunks (the GC owns those) and must
// only run once no chunk is referenced.
func allocRegionChunks(nChunks int) ([][]byte, func()) {
	total := nChunks * ChunkBytes
	// Over-map by one chunk so a ChunkBytes-aligned base of `total`
	// bytes always fits, then trim the misaligned head and the tail.
	raw, err := syscall.Mmap(-1, 0, total+ChunkBytes,
		syscall.PROT_READ|syscall.PROT_WRITE,
		syscall.MAP_PRIVATE|syscall.MAP_ANONYMOUS)
	if err != nil {
		return heapRegionChunks(nChunks), nil
	}
	base := uintptr(0)
	if len(raw) > 0 {
		base = uintptr(sliceAddr(raw))
	}
	pad := 0
	if rem := base % ChunkBytes; rem != 0 {
		pad = ChunkBytes - int(rem)
	}
	if pad > 0 {
		_ = syscall.Munmap(raw[:pad:pad]) // trim the misaligned head
	}
	if tail := raw[pad+total:]; len(tail) > 0 {
		_ = syscall.Munmap(tail[:len(tail):len(tail)]) // trim the slack tail
	}
	region := raw[pad : pad+total : pad+total]
	_ = madviseHugepage(region) // advisory: absence of THP only costs speed
	chunks := make([][]byte, nChunks)
	for i := range chunks {
		chunks[i] = region[i*ChunkBytes : (i+1)*ChunkBytes : (i+1)*ChunkBytes]
	}
	release := func() {
		_ = syscall.Munmap(region) // a dead mapping is the only fallback; nothing actionable
	}
	return chunks, release
}

const sysMadvHugepage = 14 // MADV_HUGEPAGE

func madviseHugepage(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	_, _, errno := syscall.Syscall(syscall.SYS_MADVISE,
		uintptr(sliceAddr(b)), uintptr(len(b)), sysMadvHugepage)
	if errno != 0 {
		return errno
	}
	return nil
}
