// Shared-memory transport: SPSC ring views and doorbell flags.
//
// Each ring is single-producer/single-consumer: the client is the only
// producer of the submission ring and the only consumer of the
// completion ring, the server the reverse. Indices are free-running
// uint64s (slot = index & (entries-1)); each side trusts only its own
// local copy of the indices it owns and treats the peer-published words
// in the header page as hostile input — an implausible peer index
// (used > entries) poisons the stream instead of being dereferenced.
package memnode

import (
	"errors"
	"sync/atomic" //magevet:ok host-side shared-memory ring indices, not simulation state
	"unsafe"
)

var errShmRingCorrupt = errors.New("memnode: shm ring state corrupt")

// shmWord returns the uint64 at a fixed header offset. All callers pass
// compile-time offsets that are 64-bit aligned (the mapping itself is
// page-aligned); the fuzz harness allocates its fake segments with
// make([]byte, n) for n ≥ 16, which the allocator also 8-byte aligns.
func shmWord(seg []byte, off int) *uint64 {
	return (*uint64)(unsafe.Pointer(&seg[off]))
}

// shmRing is one direction's view of a ring. The producer side fills
// local/prod/cons as (next index to publish, shared word it publishes
// to, peer's shared consumer word); the consumer side mirrors that.
type shmRing struct {
	slots   []byte  // entries × shmSlotBytes, aliasing the segment
	entries uint64  // power of two
	mine    *uint64 // shared word this side publishes (prod for producer, cons for consumer)
	peer    *uint64 // shared word the peer publishes (hostile input)
	local   uint64  // authoritative local copy of *mine
}

func newShmRing(seg []byte, slotsOff int64, entries uint64, mine, peer int) shmRing {
	return shmRing{
		slots:   seg[slotsOff : slotsOff+int64(entries)*shmSlotBytes],
		entries: entries,
		mine:    shmWord(seg, mine),
		peer:    shmWord(seg, peer),
	}
}

func (r *shmRing) slot(idx uint64) []byte {
	off := (idx & (r.entries - 1)) * shmSlotBytes
	return r.slots[off : off+shmSlotBytes]
}

// producer side ---------------------------------------------------------

// full reports whether the ring has no free slot, per the peer's
// published consumer index. err is non-nil when that index is
// implausible (consumer ahead of producer, or lagging by more than the
// ring size), which only a corrupt or hostile peer can produce.
func (r *shmRing) full() (bool, error) {
	cons := atomic.LoadUint64(r.peer)
	used := r.local - cons
	if used > r.entries {
		return false, errShmRingCorrupt
	}
	return used == r.entries, nil
}

// produce encodes nothing itself: the caller writes into slot(r.local)
// and then calls publish, which makes the entry visible to the peer.
func (r *shmRing) publish() {
	r.local++
	atomic.StoreUint64(r.mine, r.local)
}

// consumer side ---------------------------------------------------------

// available returns how many entries are ready to consume. The peer's
// producer index is hostile: a lag of more than the ring size poisons.
func (r *shmRing) available() (uint64, error) {
	prod := atomic.LoadUint64(r.peer)
	n := prod - r.local
	if n > r.entries {
		return 0, errShmRingCorrupt
	}
	return n, nil
}

// advance retires the entry at slot(r.local) and publishes the new
// consumer index so the producer sees the freed slot.
func (r *shmRing) advance() {
	r.local++
	atomic.StoreUint64(r.mine, r.local)
}

// advanceLocal retires the entry at slot(r.local) without publishing;
// a burst consumer calls it per entry and commit once at the end,
// trading peer-visible latency (bounded by one burst) for one shared
// store per burst instead of one per entry.
func (r *shmRing) advanceLocal() { r.local++ }

// commit publishes the local index accumulated by advanceLocal calls.
func (r *shmRing) commit() { atomic.StoreUint64(r.mine, r.local) }

// doorbells -------------------------------------------------------------
//
// Each side, before blocking on its doorbell socket read, publishes
// "I am about to sleep" in its flag word and re-checks the ring (so a
// publish that raced the flag is never missed). A producer that has
// just published wakes the peer only when it can CAS the peer's flag
// from 1 to 0 — so each sleep episode costs at most one byte on the
// unix socket, and a busy consumer is never interrupted by a syscall.

func shmAnnounceSleep(flag *uint64)   { atomic.StoreUint64(flag, 1) }
func shmCancelSleep(flag *uint64)     { atomic.StoreUint64(flag, 0) }
func shmShouldWake(flag *uint64) bool { return atomic.CompareAndSwapUint64(flag, 1, 0) }
