//go:build linux && arm64

package memnode

// memfd_create on linux/arm64.
const sysMemfdCreate uintptr = 279
