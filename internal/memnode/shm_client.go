// Shared-memory transport: client side.
//
// A shmStream is one negotiated shm connection generation, plugging
// into the same retry/reconnect/REGISTER-replay stack as the TCP
// streams (it implements the link interface client.go dispatches on).
// Submission is inline — the submitting goroutine allocates an arena
// extent, stages the request payload, publishes a submission-ring entry
// and rings the server's doorbell when it sleeps; a single completer
// goroutine drains the completion ring, copies response bytes out of
// the arena into pooled buffers, and resolves calls by request ID.
//
// Every value read from shared memory is hostile input: implausible
// ring indices, unknown or duplicate completion IDs, and lengths
// exceeding the call's own extent all poison the stream (every pending
// call fails, the client transparently re-dials — and falls back to TCP
// if the server no longer offers shm). The completion carries no
// offsets; response bytes are always read from the extent the client
// itself recorded at submission.
package memnode

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"        //magevet:ok memnode is a real transport client, not virtual-time simulation code
	"sync/atomic" //magevet:ok host-side arena registry gate, not simulation state
	"time"
	"unsafe"
)

// errShmUnsupported is surfaced when Options.Transport forces shm on a
// platform (or against a server) that cannot provide it.
var errShmUnsupported = errors.New("memnode: shm transport unsupported on this platform")

// shmSpinYields bounds the cooperative spin both sides run before
// parking on a doorbell read. Yield-based (not busy) spinning matters
// on small machines: a single-core box makes progress only when the
// peer gets the CPU.
const shmSpinYields = 64

// helloExt is the decoded shm extension of a v2 HELLO response.
type helloExt struct {
	shm   bool
	token uint64
	path  string
}

// parseHelloExt decodes the optional extension after the mandatory
// magic+version. Anything malformed reads as "no shm offered" — the
// extension can only ever widen the transport choice, never break the
// TCP path.
func parseHelloExt(body []byte) helloExt {
	var e helloExt
	if len(body) < helloRespLen+18 {
		return e
	}
	if binary.LittleEndian.Uint64(body[16:])&helloFlagShm == 0 {
		return e
	}
	e.token = binary.LittleEndian.Uint64(body[24:])
	pl := int(binary.LittleEndian.Uint16(body[32:]))
	// len(body) >= 34 held by the caller's length check; subtracted form
	// so the comparison cannot wrap.
	if pl == 0 || len(body)-34 < pl {
		return e
	}
	e.path = string(body[34 : 34+pl])
	e.shm = true
	return e
}

// dialShm performs the unix-socket handshake advertised by ext and
// returns a live shm stream. Any failure leaves no residue: the caller
// keeps its healthy TCP connection and falls back.
func (c *Client) dialShm(ext helloExt) (*shmStream, error) {
	d := net.Dialer{Timeout: c.opts.DialTimeout}
	conn, err := d.Dial("unix", ext.path)
	if err != nil {
		return nil, fmt.Errorf("shm dial: %w", err)
	}
	uc, ok := conn.(*net.UnixConn)
	if !ok {
		_ = conn.Close() // not a unix conn; nothing to salvage
		return nil, errors.New("shm dial: not a unix connection")
	}
	fail := func(err error) (*shmStream, error) {
		_ = uc.Close() // handshake failed; the returned error wins
		return nil, err
	}
	if err := uc.SetDeadline(time.Now().Add(c.opts.IOTimeout)); err != nil { //magevet:ok handshake deadline on a real unix socket
		return fail(err)
	}
	window := c.opts.Window
	if window > shmMaxWindow {
		window = shmMaxWindow
	}
	var req [shmHelloReqLen]byte
	binary.LittleEndian.PutUint64(req[0:], shmHelloMagic)
	binary.LittleEndian.PutUint64(req[8:], ext.token)
	binary.LittleEndian.PutUint64(req[16:], uint64(window))
	if _, err := uc.Write(req[:]); err != nil {
		return fail(fmt.Errorf("shm hello: %w", err))
	}
	resp := make([]byte, shmHelloRespLen)
	fd, err := shmRecvFd(uc, resp)
	if err != nil {
		return fail(fmt.Errorf("shm hello response: %w", err))
	}
	if resp[0] != statusOK {
		if fd >= 0 {
			_ = closeFd(fd) // refusal should carry no fd; drop it either way
		}
		n := int(resp[1])
		if n > len(resp)-2 {
			n = len(resp) - 2
		}
		return fail(fmt.Errorf("shm refused: %s", resp[2:2+n]))
	}
	if fd < 0 {
		return fail(errors.New("shm hello response carried no segment fd"))
	}
	layout := shmLayout{
		entries:    binary.LittleEndian.Uint64(resp[1:]),
		arenaOff:   int64(binary.LittleEndian.Uint64(resp[9:])),
		arenaBytes: int64(binary.LittleEndian.Uint64(resp[17:])),
		segBytes:   int64(binary.LittleEndian.Uint64(resp[25:])),
		token:      ext.token,
	}
	size, err := shmFdSize(fd)
	if err == nil {
		err = layout.validate(size)
	}
	if err != nil {
		_ = closeFd(fd) // invalid segment; the validation error wins
		return fail(err)
	}
	seg, err := shmMap(fd, layout.segBytes)
	_ = closeFd(fd) // the mapping keeps the segment alive; the fd is done
	if err != nil {
		return fail(fmt.Errorf("shm map: %w", err))
	}
	if err := layout.checkStamp(seg); err != nil {
		shmUnmap(seg)
		return fail(err)
	}
	if err := uc.SetDeadline(time.Time{}); err != nil {
		shmUnmap(seg)
		return fail(err)
	}
	st := &shmStream{
		c:     c,
		conn:  uc,
		seg:   seg,
		arena: seg[layout.arenaOff : layout.arenaOff+layout.arenaBytes],
		alloc: newShmArena(layout.arenaBytes, window),
		sq:    newShmRing(seg, shmHdrBytes, layout.entries, shmOffSqProd, shmOffSqCons),
		cq:    newShmRing(seg, shmHdrBytes+int64(layout.entries)*shmSlotBytes, layout.entries, shmOffCqCons, shmOffCqProd),
	}
	st.srvSleep = shmWord(seg, shmOffSrvSleep)
	st.cliSleep = shmWord(seg, shmOffCliSleep)
	st.pending = make([]*call, layout.entries)
	st.batch = make([]shmDone, 0, layout.entries)
	st.refs.Store(1) // the completer's reference
	shmRegisterArena(st)
	go st.completer() //magevet:ok real transport client: one completion-demux goroutine per shm connection
	return st, nil
}

// shmStream is one live shm connection generation on the client.
type shmStream struct {
	c     *Client
	conn  *net.UnixConn
	seg   []byte
	arena []byte
	alloc *shmArena
	sq    shmRing // producer view of the submission ring
	cq    shmRing // consumer view of the completion ring

	srvSleep *uint64
	cliSleep *uint64

	// mu guards stream state and the submission side of the ring. It is
	// never held across socket IO or arena data copies.
	mu      sync.Mutex
	err     error
	idSrc   uint64
	pending []*call // slot = id & (entries-1); one live call per slot
	npend   int

	// Mapping lifetime: refs counts the completer, submitters inside
	// arena sections, and outstanding zero-copy read bodies. poisoned is
	// the lock-free gate fail() sets; the holder dropping refs to zero
	// after poisoning unmaps, exactly once.
	refs      atomic.Int64
	poisoned  atomic.Bool
	unmapOnce sync.Once

	// cqSeen mirrors cq.local (republished after each locked drain) so
	// pollers can test for completion-ring progress without the lock.
	cqSeen atomic.Uint64

	batch []shmDone // completer-only scratch for lock-batched completions
}

type shmDone struct {
	ca *call
	e  cqEntry
}

// acquire takes a mapping reference; the segment cannot be unmapped
// while any reference is held. Fails once the stream is poisoned. The
// increment-then-check order matters: once our increment lands, refs
// cannot reach zero under us, so either we observed poisoned and back
// out through release (never touching the mapping), or any concurrent
// fail leaves the unmap to our eventual release.
func (st *shmStream) acquire() error {
	st.refs.Add(1)
	if st.poisoned.Load() {
		st.mu.Lock()
		err := st.err
		st.mu.Unlock()
		st.release()
		return err
	}
	return nil
}

// release drops a mapping reference; the last release after poisoning
// unmaps the segment. Deferring the munmap to this point means no
// goroutine can ever touch freed mapping memory.
func (st *shmStream) release() {
	if st.refs.Add(-1) == 0 && st.poisoned.Load() {
		st.unmapOnce.Do(st.teardown)
	}
}

func (st *shmStream) alive() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err == nil
}

func (st *shmStream) decomposeBatch() bool { return false }

// exclusiveCall: true — submission is inline and completion removes
// the call from the pending table before exec returns, so no other
// goroutine holds a reference afterwards and do() may reuse the
// struct across attempts.
func (st *shmStream) exclusiveCall() bool { return true }

// fail poisons the stream exactly once: the doorbell socket closes
// (waking the completer and notifying the server), and every pending
// call completes with err. The mapping is unmapped by the last
// reference holder, never here.
func (st *shmStream) fail(err error) {
	st.mu.Lock()
	if st.err != nil {
		st.mu.Unlock()
		return
	}
	st.err = err
	st.poisoned.Store(true) // after err: poisoned readers always find the error
	var pend []*call
	for i, ca := range st.pending {
		if ca != nil {
			pend = append(pend, ca)
			st.pending[i] = nil
		}
	}
	st.npend = 0
	st.mu.Unlock()
	_ = st.conn.Close() // the stream is already poisoned; nothing to salvage
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		st.c.timeouts.Add(1)
	}
	for _, ca := range pend {
		ca.err = err
		ca.complete()
	}
}

// needBytes returns the arena extent size an op requires: enough for
// its request payload and its response data, whichever is larger.
func needBytes(ca *call) int64 {
	switch ca.op {
	case opRegister:
		return 8
	case opStat:
		return 48
	case opProbe:
		return probeRespLen
	case opUnregister:
		return 64 // no response data; room for an error message
	case opReadV:
		var total int64
		for _, v := range ca.iovs {
			total += v.length
		}
		if total > ca.length {
			return total
		}
		return ca.length
	default: // opRead reads length bytes; opWrite/opWriteV stage length bytes
		return ca.length
	}
}

// exec runs one request through the rings and blocks until the
// completer resolves it or the stream dies.
func (st *shmStream) exec(ca *call) ([]byte, error) {
	ca.body, ca.err = nil, nil
	ca.resetGate()
	need := needBytes(ca)
	if need < 0 || need > int64(len(st.arena)) {
		return nil, &serverError{msg: fmt.Sprintf("op %d needs %d arena bytes, segment has %d", ca.op, need, len(st.arena))}
	}
	if err := st.acquire(); err != nil {
		return nil, err
	}
	// Allocate the extent, yielding while the arena is momentarily
	// exhausted by in-flight calls; the op's deadline bounds the wait
	// without poisoning the stream. The deadline is computed lazily on
	// this and every other slow path so the inline-completing hot path
	// never reads the wall clock.
	var stallDl time.Time
	overdue := func() bool {
		if stallDl.IsZero() {
			if stallDl = ca.deadline; stallDl.IsZero() {
				stallDl = time.Now().Add(st.c.opts.IOTimeout) //magevet:ok per-op network deadline, computed on the stall slow path
			}
		}
		return time.Now().After(stallDl) //magevet:ok per-op network deadline
	}
	var extOff, extCap int64
	for {
		off, cp, ok := st.alloc.alloc(need)
		if ok {
			extOff, extCap = off, cp
			break
		}
		st.mu.Lock()
		err := st.err
		st.mu.Unlock()
		if err != nil {
			st.release()
			return nil, err
		}
		if overdue() {
			st.release()
			return nil, fmt.Errorf("memnode: arena exhausted past op deadline: %w", errShmStall)
		}
		runtime.Gosched()
	}
	ca.extOff, ca.extCap = extOff, extCap
	// Stage the request payload into the extent (outside any lock; the
	// extent is exclusively ours until the ring entry publishes).
	w := st.arena[extOff : extOff+extCap]
	n := 0
	for _, b := range ca.bufs {
		n += copy(w[n:], b)
	}
	// Publish the submission entry.
	st.mu.Lock()
	for {
		if st.err != nil {
			err := st.err
			st.mu.Unlock()
			st.alloc.free(extOff, extCap)
			st.release()
			return nil, err
		}
		full, ferr := st.sq.full()
		if ferr != nil {
			st.mu.Unlock()
			st.fail(ferr)
			st.release()
			return nil, ferr
		}
		slot := (st.idSrc + 1) & (st.cq.entries - 1)
		if !full && st.pending[slot] == nil {
			break
		}
		// Ring momentarily full (possible only when the window exceeds
		// half the ring) or the slot's previous generation is still in
		// flight: yield and retry under the op deadline.
		st.mu.Unlock()
		if overdue() {
			st.release()
			return nil, fmt.Errorf("memnode: submission ring stalled past op deadline: %w", errShmStall)
		}
		runtime.Gosched()
		st.mu.Lock()
	}
	st.idSrc++
	ca.id = st.idSrc
	st.pending[ca.id&(st.cq.entries-1)] = ca
	st.npend++
	encodeSQE(st.sq.slot(st.sq.local), sqEntry{
		op: ca.op, id: ca.id, regionID: ca.srvID,
		offset: ca.offset, length: ca.length,
		extOff: uint64(extOff), extCap: uint64(extCap),
	})
	st.sq.publish()
	st.mu.Unlock()
	// Ring the server's doorbell only when it announced it is parking;
	// a busy server sees the published index on its next poll.
	if shmShouldWake(st.srvSleep) {
		_ = st.conn.SetWriteDeadline(time.Now().Add(st.c.opts.IOTimeout)) //magevet:ok doorbell write bound on a real unix socket
		if _, err := st.conn.Write([]byte{1}); err != nil {
			st.fail(err)
		}
	}
	// Inline completion polling (io_uring style): the submitter drains
	// the completion ring itself while its call is in flight. In steady
	// state on a small box the submit → yield → server-burst → drain
	// cycle resolves the call with no channel park/wake and no completer
	// hop; the completer persists as the deadline and peer-death
	// watchdog, and as the drain of last resort once we park below. The
	// mapping reference taken above stays held across the polling.
	var scratch [40]shmDone
	for spin := 0; spin < shmInlinePolls; spin++ {
		if ca.completed() {
			st.release()
			return ca.body, ca.err
		}
		if st.poisoned.Load() {
			break
		}
		// TryLock: when the lock is contended someone else is already
		// draining — fall through to the yield so they get the CPU.
		if st.cqReady() && st.mu.TryLock() {
			if _, err := st.drainLocked(scratch[:0]); err != nil {
				st.fail(err)
			}
			continue
		}
		runtime.Gosched()
	}
	// Parking: give the call a real deadline first (under st.mu — the
	// completer's overdue scan reads it there) so a wedged server still
	// times the op out. Inline-completed calls never reach this and
	// never pay the wall-clock read.
	st.mu.Lock()
	if ca.deadline.IsZero() {
		ca.deadline = time.Now().Add(st.c.opts.IOTimeout) //magevet:ok per-op network deadline, stamped only when parking
	}
	st.mu.Unlock()
	st.release()
	ca.wait()
	return ca.body, ca.err
}

// shmInlinePolls bounds a submitter's inline completion polling before
// it parks on its done channel and leaves draining to the completer.
const shmInlinePolls = 256

// errShmStall marks arena/ring backpressure that outlived an op
// deadline; it is retryable (the op may succeed after reconnect or
// once in-flight load drains).
var errShmStall = errors.New("shm transport stalled")

// completer drains the completion ring, spinning briefly between
// bursts and then parking on the doorbell socket — where peer death
// (EOF) and per-op timeouts (read deadline over the oldest pending
// deadline) are detected, mirroring the TCP reader's semantics.
func (st *shmStream) completer() {
	defer st.release()
	var db [1]byte
	for {
		if st.poisoned.Load() {
			return
		}
		n, err := st.consumeCompletions(st.batch)
		if err != nil {
			st.fail(err)
			return
		}
		if n > 0 {
			continue
		}
		spun := false
		for i := 0; i < shmSpinYields; i++ {
			runtime.Gosched()
			if st.cqReady() {
				spun = true
				break
			}
		}
		if spun {
			continue
		}
		shmAnnounceSleep(st.cliSleep)
		if st.cqReady() {
			shmCancelSleep(st.cliSleep)
			continue
		}
		// Park with a deadline tick so calls against a wedged (but not
		// dead) server still time out: on each tick, overdue pending
		// calls poison the stream; an idle tick just re-parks.
		_ = st.conn.SetReadDeadline(time.Now().Add(st.c.opts.IOTimeout)) //magevet:ok per-op network deadline
		if _, rerr := st.conn.Read(db[:]); rerr != nil {
			var ne net.Error
			if errors.As(rerr, &ne) && ne.Timeout() && !st.anyOverdue(time.Now()) { //magevet:ok per-op deadline check against wall clock
				shmCancelSleep(st.cliSleep)
				continue
			}
			st.fail(rerr)
			return
		}
		shmCancelSleep(st.cliSleep)
	}
}

// anyOverdue reports whether any pending call's deadline has passed. A
// zero deadline means the submitter is still inline-polling (it stamps
// a real deadline before parking) — such a call is never overdue; the
// submitter's own bounded poll loop is its progress guarantee.
func (st *shmStream) anyOverdue(now time.Time) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, ca := range st.pending {
		if ca != nil && !ca.deadline.IsZero() && now.After(ca.deadline) {
			return true
		}
	}
	return false
}

// cqReady is the lock-free pre-check for completion-ring progress:
// cqSeen mirrors the consumer index (republished under mu after each
// drain), so a poller can test "anything new?" with two atomic loads
// and no lock. A hostile producer index still says "ready" — the locked
// drain is where it is validated and poisons.
func (st *shmStream) cqReady() bool {
	return atomic.LoadUint64(st.cq.peer) != st.cqSeen.Load()
}

// consumeCompletions validates and resolves every available completion
// entry into the caller's scratch. The pending table is updated under
// one lock acquisition per burst; arena copies and call completion
// happen outside the lock. Safe to call from any goroutine — the
// completer and inline-polling submitters race to drain, whoever gets
// the lock first wins the burst. A non-nil error means hostile ring
// state — the caller poisons the stream, which also fails whatever this
// burst had not yet resolved.
func (st *shmStream) consumeCompletions(scratch []shmDone) (int, error) {
	st.mu.Lock()
	return st.drainLocked(scratch)
}

// drainLocked does the drain with st.mu held and releases it. Pollers
// enter via TryLock (exec's inline loop), the completer via Lock.
func (st *shmStream) drainLocked(scratch []shmDone) (int, error) {
	if st.err != nil {
		st.mu.Unlock()
		return 0, nil // already poisoned; the caller observes it elsewhere
	}
	avail, err := st.cq.available()
	if err != nil || avail == 0 {
		st.mu.Unlock()
		return 0, err
	}
	batch := scratch[:0]
	var herr error
	for i := uint64(0); i < avail; i++ {
		e := decodeCQE(st.cq.slot(st.cq.local))
		slot := e.id & (st.cq.entries - 1)
		ca := st.pending[slot]
		if ca == nil || ca.id != e.id {
			herr = fmt.Errorf("shm: completion for unknown request id %d", e.id)
			break
		}
		if e.length < 0 || e.length > ca.extCap {
			herr = fmt.Errorf("shm: completion length %d exceeds extent cap %d", e.length, ca.extCap)
			break
		}
		st.pending[slot] = nil
		st.npend--
		st.cq.advanceLocal()
		batch = append(batch, shmDone{ca: ca, e: e})
	}
	st.cq.commit() // one shared store per burst, not one per entry
	st.cqSeen.Store(st.cq.local)
	st.mu.Unlock()
	// Resolve the burst even when it ended in poison: these calls were
	// validly completed before the corruption point.
	for _, d := range batch {
		st.finish(d.ca, d.e)
	}
	return len(batch), herr
}

// finish resolves one completed call. Runs on the completer goroutine,
// which holds a mapping reference.
//
// Single READs resolve zero-copy: the body is the call's own arena
// extent (capacity-clamped to it), and the extent transfers to the
// caller — PutBuf recognizes arena-backed buffers and routes them back
// to this allocator, releasing the mapping reference the body holds.
// Reading far memory therefore costs exactly one copy (region store →
// arena), the same count as local RDMA. The flip side is shared-mapping
// semantics: the server (or a successful remote write racing the read)
// can still scribble on those bytes until PutBuf, exactly as one-sided
// RDMA into a registered buffer could.
//
// Everything else (REGISTER ids, STAT blobs, READV bodies that callers
// re-slice per page, error messages) copies into pooled buffers and
// frees the extent immediately.
func (st *shmStream) finish(ca *call, e cqEntry) {
	ext := st.arena[ca.extOff : ca.extOff+e.length]
	switch e.status {
	case statusOK:
		if e.length > 0 && ca.op == opRead {
			st.refs.Add(1) // the body keeps the mapping alive until PutBuf
			ca.body = st.arena[ca.extOff : ca.extOff+e.length : ca.extOff+ca.extCap]
			ca.complete()
			return
		}
		if e.length > 0 {
			body := getBuf(int(e.length))
			copy(body, ext)
			ca.body = body
		}
	case statusErrRegion:
		ca.err = fmt.Errorf("%w: %s", errRegionLost, ext)
	default:
		ca.err = &serverError{msg: string(ext)}
	}
	st.alloc.free(ca.extOff, ca.extCap)
	ca.complete()
}

// shmArenaReg tracks live client arenas so PutBuf can route
// arena-backed read bodies home. Writers (stream setup/teardown, rare)
// serialize on mu and republish an immutable snapshot; the PutBuf read
// path is one atomic load of the snapshot, nothing else.
var shmArenaReg struct {
	mu   sync.Mutex
	list []*shmStream // writer-side master copy
	snap atomic.Value // []*shmStream: immutable snapshot for readers
}

func shmRegisterArena(st *shmStream) {
	shmArenaReg.mu.Lock()
	defer shmArenaReg.mu.Unlock()
	shmArenaReg.list = append(shmArenaReg.list, st)
	shmArenaReg.snap.Store(append([]*shmStream(nil), shmArenaReg.list...))
}

// teardown unregisters the stream and unmaps its segment; called
// exactly once, by the holder of the last mapping reference.
func (st *shmStream) teardown() {
	shmArenaReg.mu.Lock()
	for i, s := range shmArenaReg.list {
		if s == st {
			shmArenaReg.list = append(shmArenaReg.list[:i], shmArenaReg.list[i+1:]...)
			break
		}
	}
	shmArenaReg.snap.Store(append([]*shmStream(nil), shmArenaReg.list...))
	shmArenaReg.mu.Unlock()
	shmUnmap(st.seg)
}

// shmReleaseBuf frees b back to its arena when it is an arena-backed
// read body, reporting whether it was one. The buffer must be the exact
// slice a Read returned (same base pointer and capacity), mirroring the
// pooled-buffer contract. A snapshot entry cannot be unmapped while we
// inspect it: the body's own mapping reference (taken at completion,
// dropped below) keeps its stream alive, and streams the buffer does
// not belong to are merely address-compared, never dereferenced.
func shmReleaseBuf(b []byte) bool {
	snap, _ := shmArenaReg.snap.Load().([]*shmStream)
	if len(snap) == 0 {
		return false
	}
	p := uintptr(unsafe.Pointer(unsafe.SliceData(b)))
	for _, st := range snap {
		base := uintptr(unsafe.Pointer(unsafe.SliceData(st.arena)))
		if p >= base && p-base < uintptr(len(st.arena)) {
			st.alloc.free(int64(p-base), int64(cap(b)))
			st.release()
			return true
		}
	}
	return false
}
