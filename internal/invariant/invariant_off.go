//go:build !magecheck

package invariant

// Enabled reports whether invariant checking is compiled in. It is a
// compile-time false here, so `if invariant.Enabled { ... }` blocks are
// dead-code-eliminated along with their argument evaluation.
const Enabled = false

// Assert is a no-op without the magecheck build tag.
func Assert(bool, string, ...any) {}

// Check is a no-op without the magecheck build tag.
func Check(error) {}
