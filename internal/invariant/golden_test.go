package invariant_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"mage/internal/experiments"
)

// updateGolden regenerates testdata/golden_digests.json from the current
// tree. Run it only when an output change is intended and reviewed:
//
//	go test -run TestWrapperMatchesGolden -update-golden ./internal/invariant/
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_digests.json from the current tree")

const goldenPath = "testdata/golden_digests.json"

// readGolden loads the pinned experiment→digest map.
func readGolden(t *testing.T) map[string]string {
	t.Helper()
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	out := make(map[string]string)
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("corrupt golden file %s: %v", goldenPath, err)
	}
	return out
}

// TestWrapperMatchesGolden pins every registered experiment's rendered
// output (text + CSV, hashed) to the digests captured before the
// Node/Tenant split of internal/core. The single-tenant NewSystem wrapper
// must be a zero-cost façade: if any experiment's bytes drift, the
// refactor leaked into observable behaviour. The digests were captured on
// linux/amd64 (the CI platform); the simulation itself is deterministic,
// so a mismatch means a code change, not environment noise.
func TestWrapperMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full experiments; skipped in -short mode")
	}
	if *updateGolden {
		got := make(map[string]string)
		for _, id := range experiments.Names() {
			runner, err := experiments.Lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			sc := determinismScale()
			sc.Workers = 1
			got[id] = digest(runner(sc))
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d digests to %s", len(got), goldenPath)
		return
	}

	golden := readGolden(t)
	// Every pinned experiment must still exist, and every registered
	// experiment must be pinned — a new experiment lands together with
	// its digest.
	var ids []string
	ids = append(ids, experiments.Names()...)
	sort.Strings(ids)
	for _, id := range ids {
		if _, ok := golden[id]; !ok {
			t.Errorf("experiment %q has no pinned golden digest (run -update-golden and review the diff)", id)
		}
	}
	for _, id := range ids {
		id := id
		want, ok := golden[id]
		if !ok {
			continue
		}
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			runner, err := experiments.Lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			sc := determinismScale()
			sc.Workers = 1
			if got := digest(runner(sc)); got != want {
				t.Errorf("experiment %s output drifted from pre-refactor golden: digest %s, want %s",
					id, got, want)
			}
		})
	}
}
