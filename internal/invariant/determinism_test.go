package invariant_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"mage/internal/experiments"
	"mage/internal/sim"
	"mage/internal/workload"
)

// determinismScale is a deliberately small configuration: the double-run
// test cares about bit-reproducibility, not statistical fidelity, so the
// cheapest full-pipeline run is the right one.
func determinismScale() experiments.Scale {
	sc := experiments.Quick()
	sc.Threads = 8
	sc.RegressionThreads = 4
	sc.Offloads = []float64{0.3, 0.6}
	sc.ThreadSweep = []int{4, 8}
	sc.GapBS = workload.GapBSParams{Scale: 11, EdgeFactor: 12, Iterations: 1, BytesPerVertex: 16, Seed: 42}
	sc.XS = workload.XSBenchParams{Gridpoints: 1 << 11, Nuclides: 12, LookupsPerThread: 200, NuclidesPerLookup: 3}
	sc.Seq = workload.SeqScanParams{Pages: 4 << 10, Iterations: 1, ComputePerPage: 1500}
	sc.Gups = workload.GUPSParams{Pages: 4 << 10, UpdatesPerThread: 800, PhaseSplit: 0.5,
		HotFrac: 0.8, Theta: 0.99, ComputePerUpdate: 250}
	sc.Metis = workload.MetisParams{InputPages: 2 << 10, IntermediatePages: 1 << 10,
		OutputPages: 256, EmitsPerInputPage: 1, MapCompute: 900, ReduceCompute: 700}
	sc.MC = workload.MemcachedParams{Keys: 1 << 13, ValueBytes: 256, Theta: 0.99,
		GetFraction: 0.998, ComputePerOp: 1500}
	sc.Rack = experiments.RackScale{NodeCounts: []int{4, 8}, DegradeNodes: 4, AccessesPerThread: 1200}
	sc.MicroPagesPerThread = 400
	sc.MCLoads = []float64{0.2e6}
	sc.MCFixedLoad = 0.3e6
	sc.MCDuration = 4 * sim.Millisecond
	sc.Seed = 7
	return sc
}

// digest renders every table both as aligned text and as CSV and hashes
// the bytes: any divergence in row order, cell formatting, or metric
// values changes the digest.
func digest(tables []*experiments.Table) string {
	var buf bytes.Buffer
	for _, tb := range tables {
		tb.Print(&buf)
		if err := tb.WriteCSV(&buf); err != nil {
			panic(err)
		}
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

// TestSequentialParallelByteIdentical regenerates experiments once on the
// sequential reference path (Workers=1, no host goroutines) and once with
// a parallel worker pool, and requires byte-identical rendered output.
// This is the parexp contract: cells are seeded from their grid identity
// and collected in cell order, so worker count and host scheduling must
// never reach the tables.
func TestSequentialParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("double-runs full experiments; skipped in -short mode")
	}
	// Every registry experiment: the worker count must be invisible in
	// all of them, not just the ones with convenient grids.
	for _, id := range experiments.Names() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			runner, err := experiments.Lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			seq := determinismScale()
			seq.Workers = 1
			par := determinismScale()
			par.Workers = 4
			seqDigest := digest(runner(seq))
			parDigest := digest(runner(par))
			if seqDigest != parDigest {
				t.Fatalf("experiment %s diverges across worker counts: sequential digest %s, parallel digest %s",
					id, seqDigest, parDigest)
			}
		})
	}
}

// TestExperimentsDeterministic runs experiments from the registry twice
// with the same seed and requires byte-identical rendered output. This is
// the property magevet's static checks exist to protect: same seed, same
// configuration, same bytes.
func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("double-runs full experiments; skipped in -short mode")
	}
	// One lock-contention experiment (fault path + eviction pipeline) and
	// one accounting-design sweep: together they cross every simulation
	// package the invariant layer hooks.
	for _, id := range []string{"fig7", "extacct"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			runner, err := experiments.Lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			sc := determinismScale()
			first := digest(runner(sc))
			second := digest(runner(sc))
			if first != second {
				t.Fatalf("experiment %s is nondeterministic: run 1 digest %s, run 2 digest %s",
					id, first, second)
			}
		})
	}
}
