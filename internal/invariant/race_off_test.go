//go:build !race

package invariant_test

// raceEnabled mirrors the -race build flag into test code so heavyweight
// matrix tests can trim themselves under the detector's ~10-20x
// slowdown instead of blowing the package timeout.
const raceEnabled = false
