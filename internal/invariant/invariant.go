//go:build magecheck

// Package invariant provides build-tag-gated runtime assertion helpers
// for the simulation core. With the `magecheck` tag the hot paths verify
// cross-module invariants (PTE state legality, TLB coherence, allocator
// conservation, accounting sizes) and panic on the first violation;
// without it Enabled is a compile-time false and every guarded block is
// eliminated, so production runs pay nothing.
//
// Call sites gate on the constant so argument evaluation is also elided
// in unchecked builds:
//
//	if invariant.Enabled {
//		invariant.Assert(resident >= 0, "resident %d < 0", resident)
//	}
package invariant

import "fmt"

// Enabled reports whether invariant checking is compiled in.
const Enabled = true

// Assert panics when cond is false.
func Assert(cond bool, format string, args ...any) {
	if !cond {
		panic("invariant: " + fmt.Sprintf(format, args...))
	}
}

// Check panics when err is non-nil.
func Check(err error) {
	if err != nil {
		panic("invariant: " + err.Error())
	}
}
