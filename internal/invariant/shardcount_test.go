package invariant_test

import (
	"fmt"
	"sync"
	"testing"

	"mage/internal/experiments"
	"mage/internal/sim"
)

// TestShardCountByteIdentical regenerates every registered experiment at
// sim.DefaultShards ∈ {1, 2, 4, 8} and requires byte-identical rendered
// output. This is the sharded engine's core contract: the per-domain
// event queues change how the dispatch loop finds the next event, never
// which event is next — the merge key (time, seq, domain) totally orders
// events regardless of how they are distributed across shards. Any
// digest drift means shard routing leaked into simulation behaviour.
//
// DefaultShards is a process global, so each shard round runs under a
// non-parallel group subtest: the group does not return until all its
// parallel children finish, which serialises the global's mutations.
//
// Under the race detector the full matrix (4 shard counts x every
// experiment) blows the package timeout, so the matrix trims itself to
// the endpoints {1, 8} and a representative experiment subset: extrack
// (the rack itself — multi-domain spawns, fabric, borrows), extfault
// (fault-injection event patterns), and colocate (multi-tenant node).
// The full matrix runs raceless in CI's rack-determinism job.
func TestShardCountByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates full experiments per shard count; skipped in -short mode")
	}
	defer func(n int) { sim.DefaultShards = n }(sim.DefaultShards)

	shardCounts := []int{1, 2, 4, 8}
	ids := experiments.Names()
	if raceEnabled {
		shardCounts = []int{1, 8}
		ids = []string{"extrack", "extfault", "colocate"}
	}

	var baseline sync.Map // experiment id -> digest at 1 shard
	for _, shards := range shardCounts {
		sim.DefaultShards = shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			for _, id := range ids {
				id := id
				t.Run(id, func(t *testing.T) {
					t.Parallel()
					runner, err := experiments.Lookup(id)
					if err != nil {
						t.Fatal(err)
					}
					sc := determinismScale()
					got := digest(runner(sc))
					if prev, ok := baseline.LoadOrStore(id, got); ok && prev != got {
						t.Errorf("experiment %s diverges at %d engine shards: digest %s, want %s (1 shard)",
							id, sim.DefaultShards, got, prev)
					}
				})
			}
		})
	}
}
