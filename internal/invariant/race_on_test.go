//go:build race

package invariant_test

const raceEnabled = true
