// Package tlbsim models per-core translation lookaside buffers and the
// shootdown protocol used to keep them coherent during page eviction
// (EP₂ in the paper's workflow, §3.3.1).
//
// Each core's TLB is a bounded set of virtual page numbers with FIFO
// replacement. Invalidation on remote cores requires an IPI broadcast via
// an apic.Fabric; the handler cost depends on how many pages are being
// invalidated — per-page INVLPG up to a threshold, then one full flush
// (writing cr3), matching how Linux chooses between the two.
package tlbsim

import (
	"mage/internal/apic"
	"mage/internal/invariant"
	"mage/internal/sim"
	"mage/internal/stats"
	"mage/internal/topo"
)

// TLB is one core's translation cache: a bounded set of virtual page
// numbers with FIFO replacement.
type TLB struct {
	capacity int
	entries  map[uint64]int // page -> ring index
	ring     []uint64
	pos      int

	Hits   uint64
	Misses uint64
}

const emptySlot = ^uint64(0)

// NewTLB returns a TLB holding up to capacity entries.
func NewTLB(capacity int) *TLB {
	if capacity < 1 {
		capacity = 1
	}
	t := &TLB{
		capacity: capacity,
		entries:  make(map[uint64]int, capacity),
		ring:     make([]uint64, capacity),
	}
	for i := range t.ring {
		t.ring[i] = emptySlot
	}
	return t
}

// Touch looks up page, inserting it on a miss (evicting the oldest entry
// if full), and reports whether it hit. The page number emptySlot (all
// ones) is reserved and must not be used.
func (t *TLB) Touch(page uint64) bool {
	if _, ok := t.entries[page]; ok {
		t.Hits++
		return true
	}
	t.Misses++
	if old := t.ring[t.pos]; old != emptySlot {
		// Only evict if the slot still owns the mapping (FlushPage may
		// have removed it already).
		if idx, ok := t.entries[old]; ok && idx == t.pos {
			delete(t.entries, old)
		}
	}
	t.ring[t.pos] = page
	t.entries[page] = t.pos
	t.pos = (t.pos + 1) % t.capacity
	return false
}

// Contains reports whether page is cached without updating statistics.
func (t *TLB) Contains(page uint64) bool {
	_, ok := t.entries[page]
	return ok
}

// Len returns the number of cached entries.
func (t *TLB) Len() int { return len(t.entries) }

// FlushPage removes one page if present.
func (t *TLB) FlushPage(page uint64) {
	if i, ok := t.entries[page]; ok {
		delete(t.entries, page)
		t.ring[i] = emptySlot
	}
}

// FlushAll empties the TLB (the cr3-write path).
func (t *TLB) FlushAll() {
	clear(t.entries)
	for i := range t.ring {
		t.ring[i] = emptySlot
	}
}

// Costs parameterizes shootdown handler time.
type Costs struct {
	// Invlpg is the per-page invalidation cost inside the handler.
	Invlpg sim.Time
	// FullFlush is the cost of flushing the whole TLB.
	FullFlush sim.Time
	// FullFlushThreshold: batches larger than this use FullFlush.
	FullFlushThreshold int
	// LocalFlush is the initiator-side cost of invalidating its own TLB.
	LocalFlush sim.Time
}

// DefaultCosts returns handler costs calibrated to commodity x86.
func DefaultCosts() Costs {
	return Costs{
		Invlpg:             120,
		FullFlush:          600,
		FullFlushThreshold: 33,
		LocalFlush:         150,
	}
}

// Shooter performs TLB shootdowns over an IPI fabric and tracks the TLB of
// every core.
type Shooter struct {
	fabric *apic.Fabric
	costs  Costs
	tlbs   []*TLB

	// Shootdowns counts broadcast operations (not individual IPIs).
	Shootdowns stats.Counter
	// PagesInvalidated counts pages covered by all shootdowns.
	PagesInvalidated stats.Counter
	// Latency records the initiator-observed time per shootdown — the
	// "TLB shootdown latency" series of Fig 7.
	Latency *stats.Histogram
}

// NewShooter builds a shooter over fabric with one TLB per core of
// tlbCapacity entries.
func NewShooter(fabric *apic.Fabric, machine *topo.Machine, costs Costs, tlbCapacity int) *Shooter {
	s := &Shooter{
		fabric:  fabric,
		costs:   costs,
		Latency: stats.NewHistogram(),
	}
	for i := 0; i < machine.NumCores(); i++ {
		s.tlbs = append(s.tlbs, NewTLB(tlbCapacity))
	}
	return s
}

// TLBOf returns the TLB of a core.
func (s *Shooter) TLBOf(c topo.CoreID) *TLB { return s.tlbs[c] }

// HandlerCost returns the per-target handler time for invalidating npages.
func (s *Shooter) HandlerCost(npages int) sim.Time {
	if npages > s.costs.FullFlushThreshold {
		return s.costs.FullFlush
	}
	return sim.Time(npages) * s.costs.Invlpg
}

// Completion tracks an asynchronous shootdown.
type Completion struct {
	inner   *apic.Completion
	shooter *Shooter
	start   sim.Time
	sendEnd sim.Time
	settled bool
	targets []topo.CoreID
	pages   []uint64
}

// Done reports whether all targets have acknowledged.
func (c *Completion) Done() bool { return c.inner == nil || c.inner.Done() }

// Wait blocks p until all targets have acknowledged and settles the TLB
// state. It returns the initiator-observed shootdown duration.
func (c *Completion) Wait(p *sim.Proc) sim.Time {
	if c.inner != nil {
		c.inner.Wait(p)
	}
	if !c.settled {
		c.settled = true
		for _, t := range c.targets {
			c.shooter.invalidate(c.shooter.tlbs[t], c.pages)
		}
		d := p.Now() - c.start
		c.shooter.Latency.Record(int64(d))
	}
	return p.Now() - c.start
}

// PostShootdown invalidates pages on the initiator core, issues the IPIs
// (paying the serialized send cost), and returns without waiting for
// acknowledgements. Target TLB state is settled when the returned handle
// is waited on. The initiator core must not appear in targets.
func (s *Shooter) PostShootdown(p *sim.Proc, from topo.CoreID, targets []topo.CoreID, pages []uint64) *Completion {
	c := &Completion{shooter: s, start: p.Now(), targets: targets, pages: pages}
	// Local invalidation first (INVLPG/cr3 on the initiating core).
	p.Sleep(s.costs.LocalFlush)
	s.invalidate(s.tlbs[from], pages)
	if len(targets) > 0 {
		c.inner = s.fabric.Post(p, from, targets, s.HandlerCost(len(pages)))
	}
	c.sendEnd = p.Now()
	s.Shootdowns.Inc()
	s.PagesInvalidated.Add(uint64(len(pages)))
	return c
}

// SendTime returns how long the initiator spent issuing the IPIs.
func (c *Completion) SendTime() sim.Time { return c.sendEnd - c.start }

// Shootdown invalidates pages on the initiator core and on every target
// core, blocking p until all targets acknowledge. It returns the total
// virtual time taken. The initiator core must not appear in targets.
func (s *Shooter) Shootdown(p *sim.Proc, from topo.CoreID, targets []topo.CoreID, pages []uint64) sim.Time {
	return s.PostShootdown(p, from, targets, pages).Wait(p)
}

func (s *Shooter) invalidate(t *TLB, pages []uint64) {
	if len(pages) > s.costs.FullFlushThreshold {
		t.FlushAll()
	} else {
		for _, pg := range pages {
			t.FlushPage(pg)
		}
	}
	if invariant.Enabled {
		t.checkFlushed(pages)
	}
}

// checkFlushed asserts that none of the just-invalidated pages are still
// cached and that the entries map agrees with the FIFO ring; called after
// every shootdown invalidation when built with -tags magecheck.
func (t *TLB) checkFlushed(pages []uint64) {
	for _, pg := range pages {
		invariant.Assert(!t.Contains(pg), "tlbsim: page %d still cached after invalidation", pg)
	}
	invariant.Assert(len(t.entries) <= t.capacity,
		"tlbsim: %d entries exceed capacity %d", len(t.entries), t.capacity)
	live := 0
	for i, pg := range t.ring {
		if pg == emptySlot {
			continue
		}
		if idx, ok := t.entries[pg]; ok && idx == i {
			live++
		}
	}
	invariant.Assert(live == len(t.entries),
		"tlbsim: ring holds %d live entries but map holds %d", live, len(t.entries))
}
