package tlbsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mage/internal/apic"
	"mage/internal/sim"
	"mage/internal/topo"
)

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(4)
	if tlb.Touch(10) {
		t.Error("first touch should miss")
	}
	if !tlb.Touch(10) {
		t.Error("second touch should hit")
	}
	if tlb.Hits != 1 || tlb.Misses != 1 {
		t.Errorf("hits/misses = %d/%d", tlb.Hits, tlb.Misses)
	}
}

func TestTLBFIFOEviction(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Touch(1)
	tlb.Touch(2)
	tlb.Touch(3) // evicts 1
	if tlb.Contains(1) {
		t.Error("page 1 should have been evicted")
	}
	if !tlb.Contains(2) || !tlb.Contains(3) {
		t.Error("pages 2 and 3 should be present")
	}
	if tlb.Len() != 2 {
		t.Errorf("Len = %d, want 2", tlb.Len())
	}
}

func TestTLBPageZeroIsValid(t *testing.T) {
	tlb := NewTLB(3)
	tlb.Touch(0)
	tlb.Touch(5)
	tlb.Touch(6)
	if !tlb.Contains(0) {
		t.Error("page 0 must remain after filling other slots")
	}
	tlb.Touch(7) // evicts 0 (oldest)
	if tlb.Contains(0) {
		t.Error("page 0 should be evicted by FIFO now")
	}
}

func TestTLBFlushPage(t *testing.T) {
	tlb := NewTLB(4)
	tlb.Touch(1)
	tlb.Touch(2)
	tlb.FlushPage(1)
	if tlb.Contains(1) {
		t.Error("page 1 flushed but still present")
	}
	if !tlb.Contains(2) {
		t.Error("page 2 disturbed by flush of page 1")
	}
	tlb.FlushPage(99) // absent: no-op
}

func TestTLBFlushAll(t *testing.T) {
	tlb := NewTLB(4)
	for i := uint64(0); i < 4; i++ {
		tlb.Touch(i)
	}
	tlb.FlushAll()
	if tlb.Len() != 0 {
		t.Errorf("Len after FlushAll = %d", tlb.Len())
	}
	if !tlb.Touch(7) == false {
		t.Error("touch after flush should miss")
	}
}

func TestTLBNeverExceedsCapacity(t *testing.T) {
	f := func(pages []uint16, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		tlb := NewTLB(capacity)
		for _, p := range pages {
			tlb.Touch(uint64(p))
		}
		return tlb.Len() <= capacity
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTLBRingMapConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tlb := NewTLB(8)
	for i := 0; i < 10000; i++ {
		switch rng.Intn(3) {
		case 0, 1:
			tlb.Touch(uint64(rng.Intn(32)))
		case 2:
			tlb.FlushPage(uint64(rng.Intn(32)))
		}
		// Every map entry must point at a ring slot holding its key.
		for page, idx := range tlb.entries {
			if tlb.ring[idx] != page {
				t.Fatalf("iteration %d: entry %d points at slot %d holding %d",
					i, page, idx, tlb.ring[idx])
			}
		}
	}
}

func newShooter(sockets, cps int) (*sim.Engine, *Shooter, *topo.Machine) {
	eng := sim.NewEngine()
	m := topo.NewMachine(sockets, cps)
	fab := apic.NewFabric(eng, m, apic.DefaultCosts())
	return eng, NewShooter(fab, m, DefaultCosts(), 64), m
}

func TestHandlerCostRegimes(t *testing.T) {
	_, s, _ := newShooter(1, 2)
	c := DefaultCosts()
	if got := s.HandlerCost(1); got != c.Invlpg {
		t.Errorf("HandlerCost(1) = %v", got)
	}
	if got := s.HandlerCost(c.FullFlushThreshold); got != sim.Time(c.FullFlushThreshold)*c.Invlpg {
		t.Errorf("HandlerCost(threshold) = %v", got)
	}
	if got := s.HandlerCost(c.FullFlushThreshold + 1); got != c.FullFlush {
		t.Errorf("HandlerCost(threshold+1) = %v, want full flush", got)
	}
}

func TestShootdownInvalidatesAllTargets(t *testing.T) {
	eng, s, _ := newShooter(1, 4)
	pages := []uint64{10, 11, 12}
	eng.Spawn("setup", func(p *sim.Proc) {
		for c := topo.CoreID(0); c < 4; c++ {
			for _, pg := range pages {
				s.TLBOf(c).Touch(pg)
			}
			s.TLBOf(c).Touch(99) // unrelated entry survives
		}
		s.Shootdown(p, 0, []topo.CoreID{1, 2, 3}, pages)
		for c := topo.CoreID(0); c < 4; c++ {
			for _, pg := range pages {
				if s.TLBOf(c).Contains(pg) {
					t.Errorf("core %d still caches page %d after shootdown", c, pg)
				}
			}
			if !s.TLBOf(c).Contains(99) {
				t.Errorf("core %d lost unrelated entry 99", c)
			}
		}
	})
	eng.Run()
	if s.Shootdowns.Value() != 1 || s.PagesInvalidated.Value() != 3 {
		t.Errorf("counters: %d shootdowns, %d pages",
			s.Shootdowns.Value(), s.PagesInvalidated.Value())
	}
}

func TestLargeBatchUsesFullFlush(t *testing.T) {
	eng, s, _ := newShooter(1, 2)
	var pages []uint64
	for i := uint64(0); i < 64; i++ {
		pages = append(pages, i)
	}
	eng.Spawn("setup", func(p *sim.Proc) {
		s.TLBOf(1).Touch(1000) // unrelated entry; full flush removes it too
		s.Shootdown(p, 0, []topo.CoreID{1}, pages)
		if s.TLBOf(1).Len() != 0 {
			t.Errorf("full flush left %d entries", s.TLBOf(1).Len())
		}
	})
	eng.Run()
}

func TestBatchingAmortizesIPIs(t *testing.T) {
	// One shootdown covering 256 pages must cost far less than 256
	// single-page shootdowns — the amortization MAGE's batched TLB
	// invalidation relies on (§4.2.1).
	runOne := func(batch int, count int) sim.Time {
		eng, s, _ := newShooter(2, 4)
		var total sim.Time
		eng.Spawn("e", func(p *sim.Proc) {
			targets := []topo.CoreID{1, 2, 3, 4, 5, 6, 7}
			pg := uint64(0)
			for done := 0; done < count; done += batch {
				var pages []uint64
				for i := 0; i < batch; i++ {
					pages = append(pages, pg)
					pg++
				}
				s.Shootdown(p, 0, targets, pages)
			}
			total = p.Now()
		})
		eng.Run()
		return total
	}
	batched := runOne(256, 256)
	single := runOne(1, 256)
	if batched*20 > single {
		t.Errorf("batched=%v single=%v: batching should win by >20x", batched, single)
	}
}

func TestShootdownNoTargets(t *testing.T) {
	eng, s, _ := newShooter(1, 1)
	eng.Spawn("e", func(p *sim.Proc) {
		d := s.Shootdown(p, 0, nil, []uint64{1})
		if d != DefaultCosts().LocalFlush {
			t.Errorf("local-only shootdown took %v", d)
		}
	})
	eng.Run()
}
