// Package swapspace implements the remote ("swap") allocator EP₃: the
// component that decides where on the far-memory node an evicted page's
// content lives.
//
// Two designs from the paper:
//
//   - GlobalSwapMap: the Linux swap subsystem — a bitmap of remote slots
//     guarded by one spinlock, with a next-fit scan pointer. The paper
//     identifies this lock as Hermit's dominant circulation bottleneck
//     (§3.3.3).
//   - DirectMap: MAGE's (and DiLOS's) VMA-level direct mapping — local
//     page offset i maps to remote offset i, eliminating allocation
//     entirely (§4.2.3: "the remote memory node is usually large and
//     cheap").
package swapspace

import (
	"fmt"

	"mage/internal/invariant"
	"mage/internal/sim"
)

// Entry identifies a remote page slot.
type Entry int64

// NilEntry is the invalid entry.
const NilEntry Entry = -1

// Allocator assigns remote slots to evicted pages.
type Allocator interface {
	// Alloc reserves a remote slot for virtual page `page`.
	Alloc(p *sim.Proc, page uint64) (Entry, bool)
	// Free releases a slot when its page is faulted back in.
	Free(p *sim.Proc, e Entry)
	// FreeSlots returns the number of unreserved slots.
	FreeSlots() int
	// Name identifies the design.
	Name() string
	// LockWaitNs returns cumulative lock wait (contention metric).
	LockWaitNs() int64
}

// Costs parameterizes the swap-map design.
type Costs struct {
	// MapHold is the critical-section length per alloc/free under the
	// global swap lock.
	MapHold sim.Time
	// ScanPerSlot is the added cost per bitmap slot examined.
	ScanPerSlot sim.Time
}

// DefaultCosts matches a Linux-like swap map.
func DefaultCosts() Costs {
	return Costs{MapHold: 260, ScanPerSlot: 4}
}

// GlobalSwapMap is the Linux design: one locked slot map. Lookup is O(1)
// host-side (a free stack); the simulated cost models the cluster-hinted
// bitmap scan of the Linux swap allocator.
type GlobalSwapMap struct {
	mu       *sim.Mutex
	used     []bool
	freeList []Entry
	costs    Costs
	// scanSlots is the modeled number of bitmap slots examined per alloc
	// (cluster hints keep this small in Linux).
	scanSlots int
	ops       uint64 // mutation count, drives periodic magecheck validation
}

// NewGlobalSwapMap returns a map of slots remote slots.
func NewGlobalSwapMap(eng *sim.Engine, slots int, costs Costs) *GlobalSwapMap {
	if slots <= 0 {
		panic(fmt.Sprintf("swapspace: invalid slot count %d", slots))
	}
	g := &GlobalSwapMap{
		mu:        sim.NewMutex(eng, "swap.map"),
		used:      make([]bool, slots),
		costs:     costs,
		scanSlots: 8,
	}
	// LIFO over descending entries so the first allocations come out in
	// ascending order, matching a fresh swap device.
	for i := slots - 1; i >= 0; i-- {
		g.freeList = append(g.freeList, Entry(i))
	}
	return g
}

func (g *GlobalSwapMap) Name() string      { return "global-swap-map" }
func (g *GlobalSwapMap) FreeSlots() int    { return len(g.freeList) }
func (g *GlobalSwapMap) LockWaitNs() int64 { return g.mu.WaitNs }

// Reserve marks slot e as used without cost, for initializing a system
// whose pages all start swapped out. It panics if the slot is taken.
func (g *GlobalSwapMap) Reserve(e Entry) {
	if e < 0 || int(e) >= len(g.used) || g.used[e] {
		panic(fmt.Sprintf("swapspace: bad reserve of entry %d", e))
	}
	g.used[e] = true
	// Remove from the free list lazily: filter on next rebuild. The free
	// list is rebuilt here directly since Reserve only runs at init.
	nl := g.freeList[:0]
	for _, fe := range g.freeList {
		if fe != e {
			nl = append(nl, fe)
		}
	}
	g.freeList = nl
}

// ReserveFirst reserves slots [0, n) at init time, in O(n).
func (g *GlobalSwapMap) ReserveFirst(n int) {
	if n < 0 || n > len(g.used) {
		panic(fmt.Sprintf("swapspace: bad ReserveFirst(%d)", n))
	}
	for i := 0; i < n; i++ {
		if g.used[i] {
			panic(fmt.Sprintf("swapspace: ReserveFirst over used slot %d", i))
		}
		g.used[i] = true
	}
	nl := g.freeList[:0]
	for _, fe := range g.freeList {
		if int(fe) >= n {
			nl = append(nl, fe)
		}
	}
	g.freeList = nl
}

// Alloc takes a free slot under the global lock.
func (g *GlobalSwapMap) Alloc(p *sim.Proc, _ uint64) (Entry, bool) {
	g.mu.Lock(p)
	defer g.mu.Unlock(p)
	p.Sleep(g.costs.MapHold + sim.Time(g.scanSlots)*g.costs.ScanPerSlot)
	if len(g.freeList) == 0 {
		return NilEntry, false
	}
	e := g.freeList[len(g.freeList)-1]
	g.freeList = g.freeList[:len(g.freeList)-1]
	g.used[e] = true
	if invariant.Enabled {
		g.checkConsistency()
	}
	return e, true
}

// FreeRaw releases a slot with no simulated cost; used only for zero-time
// warm-start population before a run begins.
func (g *GlobalSwapMap) FreeRaw(e Entry) {
	if e < 0 || int(e) >= len(g.used) || !g.used[e] {
		panic(fmt.Sprintf("swapspace: bad raw free of entry %d", e))
	}
	g.used[e] = false
	g.freeList = append(g.freeList, e)
}

func (g *GlobalSwapMap) Free(p *sim.Proc, e Entry) {
	g.mu.Lock(p)
	defer g.mu.Unlock(p)
	p.Sleep(g.costs.MapHold)
	if e < 0 || int(e) >= len(g.used) || !g.used[e] {
		panic(fmt.Sprintf("swapspace: bad free of entry %d", e))
	}
	g.used[e] = false
	g.freeList = append(g.freeList, e)
	if invariant.Enabled {
		g.checkConsistency()
	}
}

// checkConsistency asserts cheap bounds on every mutation and cross-checks
// the free list against the used bitmap every 1024th, when built with
// -tags magecheck.
func (g *GlobalSwapMap) checkConsistency() {
	invariant.Assert(len(g.freeList) <= len(g.used),
		"swapspace: free list holds %d entries for %d slots", len(g.freeList), len(g.used))
	g.ops++
	if g.ops&1023 != 0 {
		return
	}
	free := 0
	for _, u := range g.used {
		if !u {
			free++
		}
	}
	invariant.Assert(free == len(g.freeList),
		"swapspace: bitmap shows %d free slots but free list holds %d", free, len(g.freeList))
	seen := make(map[Entry]struct{}, len(g.freeList))
	for _, e := range g.freeList {
		invariant.Assert(e >= 0 && int(e) < len(g.used), "swapspace: free-list entry %d out of range", e)
		invariant.Assert(!g.used[e], "swapspace: free-list entry %d marked used", e)
		_, dup := seen[e]
		invariant.Assert(!dup, "swapspace: entry %d on free list twice", e)
		seen[e] = struct{}{}
	}
}

// DirectMap is the allocation-free design: remote slot = virtual page.
type DirectMap struct {
	slots int
}

// NewDirectMap covers pages [0, slots): the remote pool is provisioned for
// the entire working set.
func NewDirectMap(slots int) *DirectMap {
	if slots <= 0 {
		panic(fmt.Sprintf("swapspace: invalid slot count %d", slots))
	}
	return &DirectMap{slots: slots}
}

func (d *DirectMap) Name() string      { return "direct-map" }
func (d *DirectMap) FreeSlots() int    { return d.slots }
func (d *DirectMap) LockWaitNs() int64 { return 0 }

// Alloc is the identity mapping: no lock, no scan, no state.
func (d *DirectMap) Alloc(_ *sim.Proc, page uint64) (Entry, bool) {
	if page >= uint64(d.slots) {
		return NilEntry, false
	}
	return Entry(page), true
}

// Free is a no-op: direct-mapped slots are never reused for other pages.
func (d *DirectMap) Free(*sim.Proc, Entry) {}
