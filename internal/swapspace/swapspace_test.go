package swapspace

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"mage/internal/sim"
)

func TestGlobalMapAllocatesAllSlotsOnce(t *testing.T) {
	eng := sim.NewEngine()
	g := NewGlobalSwapMap(eng, 64, DefaultCosts())
	eng.Spawn("t", func(p *sim.Proc) {
		seen := map[Entry]bool{}
		for i := 0; i < 64; i++ {
			e, ok := g.Alloc(p, uint64(i))
			if !ok {
				t.Fatalf("alloc %d failed", i)
			}
			if seen[e] {
				t.Fatalf("entry %d handed out twice", e)
			}
			seen[e] = true
		}
		if _, ok := g.Alloc(p, 0); ok {
			t.Error("alloc beyond capacity succeeded")
		}
		if g.FreeSlots() != 0 {
			t.Errorf("FreeSlots = %d", g.FreeSlots())
		}
	})
	eng.Run()
}

func TestGlobalMapFreeRecycles(t *testing.T) {
	eng := sim.NewEngine()
	g := NewGlobalSwapMap(eng, 4, DefaultCosts())
	eng.Spawn("t", func(p *sim.Proc) {
		var es []Entry
		for i := 0; i < 4; i++ {
			e, _ := g.Alloc(p, 0)
			es = append(es, e)
		}
		g.Free(p, es[2])
		if g.FreeSlots() != 1 {
			t.Errorf("FreeSlots = %d, want 1", g.FreeSlots())
		}
		e, ok := g.Alloc(p, 0)
		if !ok || e != es[2] {
			t.Errorf("recycled entry = %d,%v; want %d", e, ok, es[2])
		}
	})
	eng.Run()
}

func TestGlobalMapBadFreePanics(t *testing.T) {
	eng := sim.NewEngine()
	g := NewGlobalSwapMap(eng, 4, DefaultCosts())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	eng.Spawn("t", func(p *sim.Proc) { g.Free(p, 2) })
	eng.Run()
}

func TestGlobalMapConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		eng := sim.NewEngine()
		g := NewGlobalSwapMap(eng, 32, DefaultCosts())
		ok := true
		eng.Spawn("t", func(p *sim.Proc) {
			rng := rand.New(rand.NewSource(seed))
			var held []Entry
			for i := 0; i < 500; i++ {
				if rng.Intn(2) == 0 {
					if e, got := g.Alloc(p, 0); got {
						held = append(held, e)
					}
				} else if len(held) > 0 {
					j := rng.Intn(len(held))
					g.Free(p, held[j])
					held[j] = held[len(held)-1]
					held = held[:len(held)-1]
				}
				if g.FreeSlots()+len(held) != 32 {
					ok = false
					return
				}
			}
		})
		eng.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestGlobalMapLockContends(t *testing.T) {
	eng := sim.NewEngine()
	g := NewGlobalSwapMap(eng, 1<<14, DefaultCosts())
	for i := 0; i < 48; i++ {
		eng.Spawn(fmt.Sprintf("t%d", i), func(p *sim.Proc) {
			for k := 0; k < 50; k++ {
				g.Alloc(p, 0)
			}
		})
	}
	eng.Run()
	if g.LockWaitNs() == 0 {
		t.Error("expected contention on the global swap lock")
	}
}

func TestDirectMapIdentity(t *testing.T) {
	d := NewDirectMap(100)
	eng := sim.NewEngine()
	eng.Spawn("t", func(p *sim.Proc) {
		for pg := uint64(0); pg < 100; pg += 7 {
			e, ok := d.Alloc(p, pg)
			if !ok || e != Entry(pg) {
				t.Errorf("Alloc(%d) = %d,%v", pg, e, ok)
			}
		}
		if _, ok := d.Alloc(p, 100); ok {
			t.Error("out-of-range page allocated")
		}
		d.Free(p, 5) // no-op, must not panic
	})
	eng.Run()
	if d.LockWaitNs() != 0 {
		t.Error("direct map has no lock")
	}
}

func TestDirectMapZeroCost(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDirectMap(1000)
	eng.Spawn("t", func(p *sim.Proc) {
		start := p.Now()
		for pg := uint64(0); pg < 1000; pg++ {
			d.Alloc(p, pg)
		}
		if p.Now() != start {
			t.Errorf("direct-map allocs consumed %v of virtual time", p.Now()-start)
		}
	})
	eng.Run()
}

func TestInvalidSizesPanic(t *testing.T) {
	for _, fn := range []func(){
		func() { NewGlobalSwapMap(sim.NewEngine(), 0, DefaultCosts()) },
		func() { NewDirectMap(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
