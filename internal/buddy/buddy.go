// Package buddy implements a binary buddy physical page-frame allocator,
// the global allocator underlying both Linux's and OSv's memory managers
// (§3.3.3 of the paper).
//
// Frames are identified by dense indices in [0, NumFrames). Allocations
// are power-of-two sized blocks ("orders"); freed blocks coalesce with
// their buddies. The allocator itself is not synchronized — callers wrap
// it in a sim.Mutex (the "global lock" the paper identifies as a
// bottleneck) or in the per-CPU caching layers of package palloc.
package buddy

import (
	"fmt"

	"mage/internal/invariant"
)

// MaxOrder is the largest supported block order (2^10 = 1024 frames,
// matching Linux's MAX_ORDER-1 = 10).
const MaxOrder = 10

// Frame is a physical page-frame index.
type Frame int32

// NilFrame is the invalid frame value.
const NilFrame Frame = -1

// Allocator is a binary buddy allocator over a contiguous frame range.
// Free lists are LIFO with lazy deletion: O(1) amortized alloc/free.
type Allocator struct {
	numFrames int
	stack     [MaxOrder + 1][]Frame            // free-block stacks by order (may hold stale entries)
	freeSet   [MaxOrder + 1]map[Frame]struct{} // authoritative free-block membership
	blockOrd  map[Frame]int                    // allocated block -> order
	freeCount int
	ops       uint64 // mutation count, drives periodic magecheck validation
}

// New returns an allocator managing numFrames frames, all initially free.
func New(numFrames int) *Allocator {
	if numFrames <= 0 {
		panic(fmt.Sprintf("buddy: invalid frame count %d", numFrames))
	}
	a := &Allocator{
		numFrames: numFrames,
		blockOrd:  make(map[Frame]int),
		freeCount: numFrames,
	}
	for o := range a.freeSet {
		a.freeSet[o] = make(map[Frame]struct{})
	}
	// Seed free lists greedily with the largest aligned blocks that fit.
	f := Frame(0)
	remaining := numFrames
	for remaining > 0 {
		o := MaxOrder
		for o > 0 && ((1<<o) > remaining || int(f)%(1<<o) != 0) {
			o--
		}
		a.push(o, f)
		f += 1 << o
		remaining -= 1 << o
	}
	return a
}

func (a *Allocator) push(order int, f Frame) {
	a.stack[order] = append(a.stack[order], f)
	a.freeSet[order][f] = struct{}{}
}

// pop removes and returns a free block of exactly this order, skipping
// entries invalidated by coalescing.
func (a *Allocator) pop(order int) (Frame, bool) {
	s := a.stack[order]
	for len(s) > 0 {
		f := s[len(s)-1]
		s = s[:len(s)-1]
		if _, ok := a.freeSet[order][f]; ok {
			delete(a.freeSet[order], f)
			a.stack[order] = s
			return f, true
		}
	}
	a.stack[order] = s
	return NilFrame, false
}

// NumFrames returns the total number of frames managed.
func (a *Allocator) NumFrames() int { return a.numFrames }

// FreeFrames returns the number of currently free frames.
func (a *Allocator) FreeFrames() int { return a.freeCount }

// Alloc allocates a block of 2^order frames and returns its first frame.
// ok is false if no block of sufficient size is free.
func (a *Allocator) Alloc(order int) (Frame, bool) {
	if order < 0 || order > MaxOrder {
		panic(fmt.Sprintf("buddy: invalid order %d", order))
	}
	// Find the smallest free block of at least the requested order.
	o := order
	var blk Frame
	ok := false
	for ; o <= MaxOrder; o++ {
		if blk, ok = a.pop(o); ok {
			break
		}
	}
	if !ok {
		return NilFrame, false
	}
	// Split down to the requested order.
	for o > order {
		o--
		a.push(o, blk+Frame(1<<o))
	}
	a.blockOrd[blk] = order
	a.freeCount -= 1 << order
	if invariant.Enabled {
		a.checkConservation()
	}
	return blk, true
}

// AllocPage allocates a single frame (order 0).
func (a *Allocator) AllocPage() (Frame, bool) { return a.Alloc(0) }

// Free returns a previously allocated block to the allocator, coalescing
// with free buddies. Freeing an unallocated or double-freed block panics.
func (a *Allocator) Free(blk Frame) {
	order, ok := a.blockOrd[blk]
	if !ok {
		panic(fmt.Sprintf("buddy: free of unallocated block %d", blk))
	}
	delete(a.blockOrd, blk)
	a.freeCount += 1 << order
	for order < MaxOrder {
		buddyBlk := blk ^ Frame(1<<order)
		// Overflow-safe form of buddyBlk+(1<<order) > numFrames: a
		// negative right side means the block cannot fit at all.
		if int(buddyBlk) > a.numFrames-(1<<order) {
			break
		}
		if _, free := a.freeSet[order][buddyBlk]; !free {
			break
		}
		delete(a.freeSet[order], buddyBlk) // lazy: stale stack entry skipped later
		if buddyBlk < blk {
			blk = buddyBlk
		}
		order++
	}
	a.push(order, blk)
	if invariant.Enabled {
		a.checkConservation()
	}
}

// checkConservation runs cheap bounds checks on every mutation and the
// full conservation/no-overlap validation every 512th, when built with
// -tags magecheck.
func (a *Allocator) checkConservation() {
	invariant.Assert(a.freeCount >= 0 && a.freeCount <= a.numFrames,
		"buddy: free count %d outside [0,%d]", a.freeCount, a.numFrames)
	a.ops++
	if a.ops&511 == 0 {
		invariant.Check(a.checkInvariants())
	}
}

// CheckInvariants validates block conservation, alignment, and
// no-overlap across the free lists and allocated blocks.
func (a *Allocator) CheckInvariants() error { return a.checkInvariants() }

// FreePage frees a single frame previously returned by AllocPage.
func (a *Allocator) FreePage(f Frame) { a.Free(f) }

// checkInvariants validates internal consistency; used by tests.
func (a *Allocator) checkInvariants() error {
	covered := make(map[Frame]bool)
	total := 0
	add := func(start Frame, order int, what string) error {
		for i := Frame(0); i < Frame(1<<order); i++ {
			f := start + i
			if int(f) >= a.numFrames {
				return fmt.Errorf("%s block %d order %d exceeds range", what, start, order)
			}
			if covered[f] {
				return fmt.Errorf("frame %d covered twice", f)
			}
			covered[f] = true
		}
		return nil
	}
	for o, blocks := range a.freeSet {
		for f := range blocks { //magevet:ok validation only: order affects at most which violation is reported first
			if int(f)%(1<<o) != 0 {
				return fmt.Errorf("free block %d misaligned for order %d", f, o)
			}
			if err := add(f, o, "free"); err != nil {
				return err
			}
			total += 1 << o
		}
	}
	if total != a.freeCount {
		return fmt.Errorf("freeCount %d != free-list total %d", a.freeCount, total)
	}
	for f, o := range a.blockOrd { //magevet:ok validation only: order affects at most which violation is reported first
		if err := add(f, o, "allocated"); err != nil {
			return err
		}
	}
	if len(covered) != a.numFrames {
		return fmt.Errorf("covered %d frames, want %d", len(covered), a.numFrames)
	}
	return nil
}
