package buddy

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAllFree(t *testing.T) {
	a := New(1 << 12)
	if a.FreeFrames() != 1<<12 {
		t.Fatalf("FreeFrames = %d", a.FreeFrames())
	}
	if err := a.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNewNonPowerOfTwo(t *testing.T) {
	a := New(1000)
	if a.FreeFrames() != 1000 {
		t.Fatalf("FreeFrames = %d", a.FreeFrames())
	}
	if err := a.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// All 1000 frames must be allocatable one at a time.
	for i := 0; i < 1000; i++ {
		if _, ok := a.AllocPage(); !ok {
			t.Fatalf("alloc %d failed", i)
		}
	}
	if _, ok := a.AllocPage(); ok {
		t.Fatal("alloc beyond capacity succeeded")
	}
}

func TestInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}

func TestAllocFreeRoundTrip(t *testing.T) {
	a := New(64)
	f, ok := a.Alloc(3)
	if !ok {
		t.Fatal("alloc failed")
	}
	if int(f)%8 != 0 {
		t.Errorf("order-3 block %d misaligned", f)
	}
	if a.FreeFrames() != 56 {
		t.Errorf("FreeFrames = %d, want 56", a.FreeFrames())
	}
	a.Free(f)
	if a.FreeFrames() != 64 {
		t.Errorf("FreeFrames after free = %d, want 64", a.FreeFrames())
	}
	if err := a.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCoalescingRestoresLargeBlocks(t *testing.T) {
	a := New(16)
	var frames []Frame
	for i := 0; i < 16; i++ {
		f, ok := a.AllocPage()
		if !ok {
			t.Fatal("alloc failed")
		}
		frames = append(frames, f)
	}
	if _, ok := a.Alloc(4); ok {
		t.Fatal("order-4 alloc should fail when all frames allocated")
	}
	for _, f := range frames {
		a.FreePage(f)
	}
	// After freeing everything, a full order-4 block must be available.
	if _, ok := a.Alloc(4); !ok {
		t.Fatal("coalescing failed: no order-4 block after freeing all")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a := New(8)
	f, _ := a.AllocPage()
	a.FreePage(f)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double free")
		}
	}()
	a.FreePage(f)
}

func TestFreeUnallocatedPanics(t *testing.T) {
	a := New(8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Free(3)
}

func TestInvalidOrderPanics(t *testing.T) {
	a := New(8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Alloc(MaxOrder + 1)
}

func TestExhaustionAndRecovery(t *testing.T) {
	a := New(32)
	var fs []Frame
	for {
		f, ok := a.AllocPage()
		if !ok {
			break
		}
		fs = append(fs, f)
	}
	if len(fs) != 32 || a.FreeFrames() != 0 {
		t.Fatalf("allocated %d frames, free %d", len(fs), a.FreeFrames())
	}
	a.FreePage(fs[0])
	if f, ok := a.AllocPage(); !ok || f != fs[0] {
		t.Errorf("recovered alloc = %d,%v; want %d,true", f, ok, fs[0])
	}
}

func TestNoDuplicateFramesProperty(t *testing.T) {
	f := func(seed int64, opsRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(256)
		ops := int(opsRaw%2000) + 100
		held := make(map[Frame]int) // frame -> order
		for i := 0; i < ops; i++ {
			if rng.Intn(2) == 0 || len(held) == 0 {
				order := rng.Intn(4)
				blk, ok := a.Alloc(order)
				if !ok {
					continue
				}
				// No overlap with held blocks.
				for h, ho := range held {
					lo, hi := int(h), int(h)+(1<<ho)
					blo, bhi := int(blk), int(blk)+(1<<order)
					if blo < hi && lo < bhi {
						return false
					}
				}
				held[blk] = order
			} else {
				for h := range held {
					a.Free(h)
					delete(held, h)
					break
				}
			}
		}
		return a.checkInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(512)
		var held []Frame
		heldFrames := 0
		for i := 0; i < 3000; i++ {
			if rng.Intn(2) == 0 {
				if f, ok := a.AllocPage(); ok {
					held = append(held, f)
					heldFrames++
				}
			} else if len(held) > 0 {
				i := rng.Intn(len(held))
				a.FreePage(held[i])
				held[i] = held[len(held)-1]
				held = held[:len(held)-1]
				heldFrames--
			}
			if a.FreeFrames()+heldFrames != 512 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestChurnedAllocatorStaysConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	a := New(1024)
	var held []Frame
	for i := 0; i < 50000; i++ {
		if rng.Intn(5) < 3 {
			if f, ok := a.AllocPage(); ok {
				held = append(held, f)
			}
		} else if len(held) > 0 {
			j := rng.Intn(len(held))
			a.FreePage(held[j])
			held[j] = held[len(held)-1]
			held = held[:len(held)-1]
		}
	}
	if err := a.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAllocFreeChurn(b *testing.B) {
	a := New(1 << 16)
	var held []Frame
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		if len(held) < 1<<15 || rng.Intn(2) == 0 {
			if f, ok := a.AllocPage(); ok {
				held = append(held, f)
				continue
			}
		}
		if len(held) > 0 {
			j := rng.Intn(len(held))
			a.FreePage(held[j])
			held[j] = held[len(held)-1]
			held = held[:len(held)-1]
		}
	}
}
