package experiments

import (
	"testing"

	"mage/internal/nic"
)

func TestExtExperimentsRegistered(t *testing.T) {
	for _, name := range []string{"extevict", "extacct", "extbackend", "claims"} {
		if _, err := Lookup(name); err != nil {
			t.Errorf("%s not registered: %v", name, err)
		}
	}
}

func TestClaimsTableStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb := Claims(tiny())[0]
	if len(tb.Rows) < 8 {
		t.Fatalf("claims rows = %d, want >= 8", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		if len(r) != 4 {
			t.Fatalf("row %v has %d cells", r, len(r))
		}
		if r[3] != "PASS" && r[3] != "FAIL" {
			t.Errorf("verdict %q", r[3])
		}
	}
	// The P1 claim must hold even at tiny scale.
	for _, r := range tb.Rows {
		if r[0] == "MAGE never evicts synchronously (P1)" && r[3] != "PASS" {
			t.Errorf("P1 claim failed at tiny scale: %v", r)
		}
	}
}

func TestBackendCostPresetsDiffer(t *testing.T) {
	rdma := nic.BackendCosts(nic.BackendRDMA, nic.StackLibOS)
	nvme := nic.BackendCosts(nic.BackendNVMe, nic.StackLibOS)
	zswap := nic.BackendCosts(nic.BackendZswap, nic.StackLibOS)
	if nvme.BaseLatency <= rdma.BaseLatency {
		t.Error("NVMe should be slower than RDMA")
	}
	if nvme.BytesPerNs >= rdma.BytesPerNs {
		t.Error("NVMe should have less bandwidth than 200Gbps RDMA")
	}
	if zswap.StackCost <= rdma.StackCost {
		t.Error("zswap should pay CPU compression cost")
	}
}

func TestExtAccountingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb := ExtAccounting(tiny())[0]
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 accounting designs", len(tb.Rows))
	}
	// Contention: partitioned and per-cpu-fifo must wait less on their
	// accounting locks than the global LRU.
	globalWait := cell(t, tb, 0, 3)
	partWait := cell(t, tb, 2, 3)
	fifoWait := cell(t, tb, 3, 3)
	if partWait > globalWait {
		t.Errorf("partitioned wait %v > global wait %v", partWait, globalWait)
	}
	if fifoWait > globalWait {
		t.Errorf("fifo wait %v > global wait %v", fifoWait, globalWait)
	}
}

func TestExtEvictorSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb := ExtEvictors(tiny())[0]
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// 4 evictors must not be slower than 1 (the sweet-spot claim's easy
	// half; the hard half — 8/16 not helping — is scale-dependent).
	one := cell(t, tb, 0, 1)
	four := cell(t, tb, 2, 1)
	if four < one*0.9 {
		t.Errorf("4 evictors (%v Mops) slower than 1 (%v)", four, one)
	}
}

func TestExtBackendsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb := ExtBackends(tiny())[0]
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// On every backend MAGE performs at least as well as Hermit.
	for i := 0; i < 6; i += 2 {
		hermit := cell(t, tb, i, 2)
		magelib := cell(t, tb, i+1, 2)
		if magelib < hermit {
			t.Errorf("backend %s: MageLib %v < Hermit %v", tb.Rows[i][0], magelib, hermit)
		}
	}
}
