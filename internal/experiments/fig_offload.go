package experiments

import (
	"fmt"

	"mage/internal/core"
	"mage/internal/sim"
	"mage/internal/workload"
)

// offloadSweep runs one workload across offload fractions on the given
// systems and tabulates jobs/hour plus the throughput drop relative to
// each system's own all-local baseline.
func offloadSweep(id, title string, sc Scale, w func() workload.Workload, systems []string, threads int, mutate func(*core.Config)) *Table {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: append([]string{"far-mem%"}, headerPairs(systems)...),
	}
	// Cell grid: one all-local baseline per system, then one cell per
	// (offload, system) point; the 0% row reuses the baseline cells.
	type cell struct {
		off  float64
		name string
	}
	cells := make([]cell, 0, len(systems)*(1+len(sc.Offloads)))
	for _, name := range systems {
		cells = append(cells, cell{0, name})
	}
	for _, off := range sc.Offloads {
		for _, name := range systems {
			cells = append(cells, cell{off, name})
		}
	}
	cellJPH := runCells(sc, len(cells), func(i int) float64 {
		c := cells[i]
		res := runStreams(c.name, threads, w(), c.off, sc.Seed, mutate)
		return res.JobsPerHour()
	})
	base := map[string]float64{}
	for i, name := range systems {
		base[name] = cellJPH[i]
	}
	points := append([]float64{0}, sc.Offloads...)
	for pi, off := range points {
		row := []string{fmtPct(off)}
		for si, name := range systems {
			// Row pi is the pi-th block of len(systems) cells; block 0 is
			// the all-local baselines, which double as the 0% row.
			jph := cellJPH[pi*len(systems)+si]
			drop := 0.0
			if base[name] > 0 {
				drop = 1 - jph/base[name]
			}
			row = append(row, fmtF1(jph), fmtPct(drop))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d app threads; jobs/h from makespan of the slowest thread; drop%% vs each system's 100%%-local run", threads))
	return t
}

func headerPairs(systems []string) []string {
	var h []string
	for _, s := range systems {
		h = append(h, s+" j/h", s+" drop")
	}
	return h
}

// Fig1 reproduces Figure 1: GapBS PageRank throughput as a function of
// the percentage of far memory, 48 threads, all systems against the
// ideal baseline.
func Fig1(sc Scale) []*Table {
	return []*Table{offloadSweep("fig1",
		"GapBS PageRank throughput vs far-memory fraction (48 threads)",
		sc, func() workload.Workload { return workload.NewGapBS(sc.GapBS) },
		systemNames, sc.Threads, nil)}
}

// Fig3 reproduces Figure 3: the ideal-vs-Hermit collapse for the two
// random-access applications.
func Fig3(sc Scale) []*Table {
	systems := []string{"Ideal", "Hermit"}
	return []*Table{
		offloadSweep("fig3a", "GapBS PageRank: ideal vs Hermit (48 threads)",
			sc, func() workload.Workload { return workload.NewGapBS(sc.GapBS) },
			systems, sc.Threads, nil),
		offloadSweep("fig3b", "XSBench: ideal vs Hermit (48 threads)",
			sc, func() workload.Workload { return workload.NewXSBench(sc.XS) },
			systems, sc.Threads, nil),
	}
}

// Fig9 reproduces Figure 9: application throughput with varying local
// memory for GapBS and XSBench across all systems.
func Fig9(sc Scale) []*Table {
	return []*Table{
		offloadSweep("fig9a", "GapBS throughput vs local memory (48 threads)",
			sc, func() workload.Workload { return workload.NewGapBS(sc.GapBS) },
			systemNames, sc.Threads, nil),
		offloadSweep("fig9b", "XSBench throughput vs local memory (48 threads)",
			sc, func() workload.Workload { return workload.NewXSBench(sc.XS) },
			systemNames, sc.Threads, nil),
	}
}

// Fig4 reproduces Figure 4: sequential scan under Hermit and DiLOS with
// prefetching, against their shared ideal baseline.
func Fig4(sc Scale) []*Table {
	mutate := func(c *core.Config) {
		if !c.Ideal {
			c.Prefetch = true
			c.PrefetchDegree = 16
		}
	}
	return []*Table{offloadSweep("fig4",
		"Sequential scan (prefetch on): ideal vs Hermit vs DiLOS (48 threads)",
		sc, func() workload.Workload { return workload.NewSeqScan(sc.Seq) },
		[]string{"Ideal", "Hermit", "DiLOS"}, sc.Threads, mutate)}
}

// Fig10 reproduces Figure 10: the sequential scan with and without
// prefetching across all systems (Mage^LNX lacks prefetch support and is
// reported without it, as in the paper).
func Fig10(sc Scale) []*Table {
	t := &Table{
		ID:     "fig10",
		Title:  "Sequential scan: prefetching on/off (48 threads)",
		Header: []string{"system", "prefetch", "far-mem%", "Mops/s", "faults", "drop"},
	}
	w := func() workload.Workload { return workload.NewSeqScan(sc.Seq) }
	off := 0.1
	type cell struct {
		name string
		pf   bool
	}
	var cells []cell
	for _, name := range []string{"Ideal", "Hermit", "DiLOS", "MageLib", "MageLnx"} {
		for _, pf := range []bool{false, true} {
			if pf && (name == "Ideal" || name == "MageLnx") {
				continue
			}
			cells = append(cells, cell{name, pf})
		}
	}
	type point struct {
		res  core.RunResult
		drop float64
	}
	results := runCells(sc, len(cells), func(i int) point {
		c := cells[i]
		mutate := func(cf *core.Config) {
			cf.Prefetch = c.pf
			cf.PrefetchDegree = 16
		}
		baseRes := runStreams(c.name, sc.Threads, w(), 0, sc.Seed, mutate)
		res := runStreams(c.name, sc.Threads, w(), off, sc.Seed, mutate)
		return point{res, 1 - res.JobsPerHour()/baseRes.JobsPerHour()}
	})
	for i, c := range cells {
		p := results[i]
		t.AddRow(c.name, fmt.Sprintf("%v", c.pf), fmtPct(off),
			fmtF(p.res.OpsPerSec()/1e6),
			fmt.Sprintf("%d", p.res.Metrics.MajorFaults), fmtPct(p.drop))
	}
	t.Notes = append(t.Notes, "paper: prefetching cuts Mage^LIB faults ~4x and recovers near-ideal throughput; helps DiLOS little; hurts Hermit")
	return []*Table{t}
}

// Fig12 reproduces Figure 12: Metis map/reduce phase throughput vs
// offloading. The BSP barrier between phases is the working-set shift.
func Fig12(sc Scale) []*Table {
	t := &Table{
		ID:     "fig12",
		Title:  "Metis map and reduce phase throughput vs far memory (48 threads)",
		Header: []string{"far-mem%", "system", "map Mops/s", "reduce Mops/s", "switch@ms", "makespan ms"},
	}
	type cell struct {
		off  float64
		name string
	}
	var cells []cell
	for _, off := range []float64{0, 0.1, 0.2} {
		for _, name := range systemNames {
			cells = append(cells, cell{off, name})
		}
	}
	type point struct {
		switchAt sim.Time
		makespan sim.Time
	}
	results := runCells(sc, len(cells), func(i int) point {
		c := cells[i]
		m := workload.NewMetis(sc.Metis)
		s := buildSystemRaw(c.name, sc.Threads, m.NumPages(), c.off, nil)
		// The intermediate/output regions are runtime allocations
		// (zero-fill on first touch); the input — the map phase's
		// working set, laid out first — starts resident. Offloading
		// therefore displaces what the reduce phase will need: the
		// paper's phase-change setup.
		applyZeroFill(s, m)
		s.PrepopulateFront(int(m.NumPages()))
		streams := m.StreamsOn(s.Eng, sc.Threads, sc.Seed)
		res := s.RunWithOptions(streams, core.RunOptions{})
		return point{switchAt: m.PhaseSwitchAt, makespan: res.Makespan}
	})
	for i, c := range cells {
		switchAt, makespan := results[i].switchAt, results[i].makespan
		mapOps := float64(0)
		redOps := float64(0)
		// Access counts per phase derive from the params.
		perThreadMap := float64(sc.Metis.InputPages) / float64(sc.Threads) * float64(1+sc.Metis.EmitsPerInputPage)
		perThreadRed := float64(sc.Metis.IntermediatePages) / float64(sc.Threads) * 1.125
		if switchAt > 0 {
			mapOps = perThreadMap * float64(sc.Threads) / switchAt.Seconds()
		}
		if makespan > switchAt {
			redOps = perThreadRed * float64(sc.Threads) / (makespan - switchAt).Seconds()
		}
		t.AddRow(fmtPct(c.off), c.name, fmtF(mapOps/1e6), fmtF(redOps/1e6),
			fmtF1(switchAt.Seconds()*1e3), fmtF1(makespan.Seconds()*1e3))
	}
	t.Notes = append(t.Notes, "paper: after the phase change MAGE loses ~14% while Hermit/DiLOS lose 61%/41%")
	return []*Table{t}
}

// Fig11 reproduces Figure 11: the GUPS timeline through its phase change
// at 85% local memory.
func Fig11(sc Scale) []*Table {
	t := &Table{
		ID:     "fig11",
		Title:  "GUPS throughput timeline across the phase change (85% local)",
		Header: []string{"system", "pre-change Mops/s", "post-change min", "recovered Mops/s", "stall ms"},
	}
	type point struct{ pre, minPost, rec, stall float64 }
	results := runCells(sc, len(systemNames), func(i int) point {
		g := workload.NewGUPS(sc.Gups)
		// Phase 1's region (the first 80% of the WSS) starts resident and
		// fits within the 85% local quota, so the first phase runs nearly
		// fault-free — the transition is what gets measured.
		s := buildSystemPrepop(systemNames[i], sc.Threads, g.NumPages(), 0.15, nil, false)
		res := s.RunWithOptions(g.Streams(sc.Threads, sc.Seed),
			core.RunOptions{SampleEvery: res11SamplePeriod})
		pre, minPost, rec, stall := timelineStats(res)
		return point{pre, minPost, rec, stall}
	})
	for i, name := range systemNames {
		p := results[i]
		t.AddRow(name, fmtF(p.pre/1e6), fmtF(p.minPost/1e6), fmtF(p.rec/1e6), fmtF1(p.stall))
	}
	t.Notes = append(t.Notes,
		"paper: Hermit/DiLOS nearly stall >2s after the change; MAGE dips briefly and recovers")
	return []*Table{t}
}

const res11SamplePeriod = 100 * 1000 // 100µs in sim.Time units (ns)

// timelineStats extracts the phase-change signature from the sampled
// series: steady pre-change rate, the post-change minimum, the recovered
// rate, and how long throughput stayed below half the pre-change rate.
func timelineStats(res core.RunResult) (pre, minPost, recovered, stallMs float64) {
	s := res.Series
	if s == nil || s.Len() < 4 {
		return 0, 0, 0, 0
	}
	n := s.Len()
	// Pre-change rate: median of the first third.
	third := n / 3
	if third == 0 {
		third = 1
	}
	var sum float64
	for i := 0; i < third; i++ {
		sum += s.V[i]
	}
	pre = sum / float64(third)
	// Find the global minimum after the first third.
	minPost = s.V[third]
	minIdx := third
	for i := third; i < n; i++ {
		if s.V[i] < minPost {
			minPost = s.V[i]
			minIdx = i
		}
	}
	// Recovered rate: average of the tail after the minimum.
	cnt := 0
	for i := minIdx; i < n; i++ {
		recovered += s.V[i]
		cnt++
	}
	if cnt > 0 {
		recovered /= float64(cnt)
	}
	// Stall: total time below 50% of pre.
	for i := 1; i < n; i++ {
		if s.V[i] < pre/2 {
			stallMs += float64(s.T[i]-s.T[i-1]) / 1e6
		}
	}
	return pre, minPost, recovered, stallMs
}
