package experiments

import (
	"fmt"

	"mage/internal/core"
	"mage/internal/faultinject"
	"mage/internal/sim"
)

// RackScale sizes the rack-scale cross-node eviction sweeps (extrack).
type RackScale struct {
	// NodeCounts is the rack sizes for the placement sweep.
	NodeCounts []int
	// DegradeNodes is the fixed fleet size for the link-degradation sweep.
	DegradeNodes int
	// AccessesPerThread is the closed-loop run length on pressured nodes.
	AccessesPerThread int
}

// Per-node shape of the rack workload. Pressured ("hot") nodes churn a
// working set 8× their local DRAM; idle ("cold") nodes keep everything
// resident and touch a tiny footprint, leaving a large lendable pool.
const (
	rackPagesPerNode = 2048
	rackHotLocal     = 256
	rackBalLocal     = 1024
	rackHotThreads   = 2
	rackColdAccesses = 200
	rackColdFootprt  = 64
)

// ExtRack is the rack-scale sweep for cross-node eviction: N nodes on a
// simulated fabric, where a node under memory pressure offers eviction
// victims to neighbours with free frames before paying a swap writeback.
// Two grids:
//
//   - a placement sweep (balanced vs skewed tenant placement, borrow
//     on/off, 4–16 nodes), showing that borrowing converts free
//     neighbour DRAM into avoided writebacks only when placement is
//     imbalanced;
//   - a link-degradation sweep on the skewed mix, showing borrowing
//     degrade gracefully — throttled by slow links, abandoned across
//     severed ones — while the swap path carries the load.
//
// Every cell is one self-contained rack on a private engine; stream and
// injector seeds derive from the cell identity, so the tables render
// byte-identical at any worker count and any event-shard count.
func ExtRack(sc Scale) []*Table {
	return []*Table{rackPlacementSweep(sc), rackDegradeSweep(sc)}
}

// rackAccList builds a deterministic pseudo-random access list
// (splitmix64 over the page range, ~50% writes).
func rackAccList(pages uint64, count int, seed int64) []core.Access {
	accs := make([]core.Access, 0, count)
	x := uint64(seed)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
	for i := 0; i < count; i++ {
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		accs = append(accs, core.Access{Page: x % pages, Write: x&2 == 0, Compute: 200})
	}
	return accs
}

// rackAgg is one rack run reduced to whole-fleet totals. Node-shared
// counters (NIC writes, borrow ledger) are read once per node.
type rackAgg struct {
	swapWrites uint64
	borrows    uint64
	fetches    uint64
	reclaims   uint64
	makespan   sim.Time
}

func aggRack(res [][]core.RunResult) rackAgg {
	var a rackAgg
	for _, node := range res {
		for ti := range node {
			m := &node[ti].Metrics
			if ti == 0 {
				a.swapWrites += m.RdmaWrites
				a.borrows += m.BorrowsOut
				a.reclaims += m.BorrowReclaims
			}
			a.fetches += m.BorrowFetches
			if node[ti].Makespan > a.makespan {
				a.makespan = node[ti].Makespan
			}
		}
	}
	return a
}

func (a rackAgg) row(prefix ...string) []string {
	return append(prefix,
		fmt.Sprintf("%d", a.swapWrites),
		fmt.Sprintf("%d", a.borrows),
		fmt.Sprintf("%d", a.fetches),
		fmt.Sprintf("%d", a.reclaims),
		fmtF(float64(a.makespan)/1e6))
}

var rackResultCols = []string{"swap writes", "borrows out", "fetches", "reclaims", "makespan ms"}

// runRackCell builds and runs one rack. placement "balanced" gives every
// node the same mid pressure (no lendable headroom anywhere); "skewed"
// makes the first half of the fleet hot and the second half idle hosts.
func runRackCell(sc Scale, nodes int, placement string, borrow bool,
	plans map[[2]int]*faultinject.Plan, table string) rackAgg {
	specs := make([]core.NodeSpec, nodes)
	streams := make([][][]core.AccessStream, nodes)
	for i := range specs {
		hot := placement == "balanced" || i < nodes/2
		threads, local := rackHotThreads, rackHotLocal
		if placement == "balanced" {
			local = rackBalLocal
		}
		if !hot {
			threads, local = 1, rackPagesPerNode
		}
		cfg, err := core.Preset("MageLib", threads, rackPagesPerNode, local)
		if err != nil {
			panic(err)
		}
		cfg.Name = fmt.Sprintf("n%d", i)
		specs[i] = core.NodeSpec{Cfg: cfg}
		th := make([]core.AccessStream, threads)
		for ti := range th {
			seed := faultinject.DeriveSeed(sc.Seed, "extrack", table, placement,
				fmt.Sprintf("%d/%d.%d", nodes, i, ti))
			if hot {
				th[ti] = &core.SliceStream{Accs: rackAccList(rackPagesPerNode, sc.Rack.AccessesPerThread, seed)}
			} else {
				th[ti] = &core.SliceStream{Accs: rackAccList(rackColdFootprt, rackColdAccesses, seed)}
			}
		}
		streams[i] = [][]core.AccessStream{th}
	}
	r, err := core.NewRack(core.RackConfig{Nodes: specs, Borrow: borrow, LinkPlans: plans})
	if err != nil {
		panic(err)
	}
	return aggRack(r.Run(streams, core.RunOptions{}))
}

func rackPlacementSweep(sc Scale) *Table {
	t := &Table{
		ID:     "extrack",
		Title:  "Cross-node eviction: placement mixes, borrow on/off (MageLib nodes)",
		Header: append([]string{"nodes", "placement", "borrow"}, rackResultCols...),
	}
	type cell struct {
		nodes     int
		placement string
		borrow    bool
	}
	var cells []cell
	for _, n := range sc.Rack.NodeCounts {
		for _, pl := range []string{"balanced", "skewed"} {
			for _, b := range []bool{false, true} {
				cells = append(cells, cell{n, pl, b})
			}
		}
	}
	results := runCells(sc, len(cells), func(i int) rackAgg {
		c := cells[i]
		return runRackCell(sc, c.nodes, c.placement, c.borrow, nil, "placement")
	})
	for i, c := range cells {
		t.AddRow(results[i].row(fmt.Sprintf("%d", c.nodes), c.placement, fmt.Sprintf("%v", c.borrow))...)
	}
	t.Notes = append(t.Notes,
		"skewed placement: first half of the fleet churns 8x its DRAM while the second half idles; borrowing moves victims over the fabric instead of swapping them",
		"balanced placement leaves no node with lendable headroom (budget = free - 2x high watermark), so borrow on/off rows should barely differ")
	return t
}

// rackDegradeLevels is the link-quality ladder for the degradation
// sweep. mk is nil for healthy links (no injector attached).
var rackDegradeLevels = []struct {
	label string
	mk    func(seed int64) faultinject.Plan
}{
	{"healthy", nil},
	{"slow-4x", func(s int64) faultinject.Plan {
		return faultinject.Plan{Seed: s, Degraded: []faultinject.Window{{Start: 0, End: 1 << 60}}, DegradeFactor: 0.25}
	}},
	{"lossy-2%", func(s int64) faultinject.Plan {
		return faultinject.Plan{Seed: s, ReadFailProb: 0.02, WriteFailProb: 0.02}
	}},
	{"severed", func(s int64) faultinject.Plan {
		return faultinject.Plan{Seed: s, Outages: []faultinject.Window{{Start: 0, End: 1 << 60}}}
	}},
}

func rackDegradeSweep(sc Scale) *Table {
	nodes := sc.Rack.DegradeNodes
	t := &Table{
		ID: "extrack-degrade",
		Title: fmt.Sprintf("Cross-node eviction under link degradation (%d MageLib nodes, skewed placement)",
			nodes),
		Header: append([]string{"link", "borrow"}, rackResultCols...),
	}
	type cell struct {
		level  int
		borrow bool
	}
	var cells []cell
	for li := range rackDegradeLevels {
		for _, b := range []bool{false, true} {
			cells = append(cells, cell{li, b})
		}
	}
	results := runCells(sc, len(cells), func(i int) rackAgg {
		c := cells[i]
		lv := rackDegradeLevels[c.level]
		var plans map[[2]int]*faultinject.Plan
		if lv.mk != nil {
			plans = make(map[[2]int]*faultinject.Plan)
			for a := 0; a < nodes; a++ {
				for b := a + 1; b < nodes; b++ {
					p := lv.mk(faultinject.DeriveSeed(sc.Seed, "extrack-degrade", lv.label,
						fmt.Sprintf("%d-%d", a, b)))
					plans[[2]int{a, b}] = &p
				}
			}
		}
		return runRackCell(sc, nodes, "skewed", c.borrow, plans, "degrade-"+lv.label)
	})
	for i, c := range cells {
		t.AddRow(results[i].row(rackDegradeLevels[c.level].label, fmt.Sprintf("%v", c.borrow))...)
	}
	t.Notes = append(t.Notes,
		"healthy links: borrowing absorbs most of the pressured nodes' writebacks; the reduction is the headline win",
		"severed links remove every candidate host, so the borrow=true row must collapse onto the borrow=false baseline",
		"lossy links charge failed transfers to the borrow path (alloc + rollback) without stalling eviction: the swap fallback always completes")
	return t
}
