package experiments

import (
	"fmt"

	"mage/internal/core"
	"mage/internal/workload"
)

// ablationSteps builds the Figure 17 configuration ladder: DiLOS as the
// baseline, then each MAGE technique applied cumulatively.
func ablationSteps(threads int, total uint64, local int) []core.Config {
	base := core.DiLOS(threads, total, local)
	base.Name = "Baseline"

	pip := base
	pip.Name = "+Pipelined"
	pip.Pipelined = true
	pip.SyncEviction = false
	pip.BatchSize = 256
	pip.TLBBatch = 256

	lruP := pip
	lruP.Name = "+LRU-part"
	lruP.Accounting = core.AcctPartitioned

	ml := lruP
	ml.Name = "+MultiLayer"
	ml.Allocator = core.AllocMultiLayer

	return []core.Config{base, pip, lruP, ml}
}

// runCfg executes a workload on an explicit config with warm start.
func runCfg(cfg core.Config, w workload.Workload, threads int, seed int64) core.RunResult {
	s := core.MustNewSystem(cfg)
	applyZeroFill(s, w)
	s.Prepopulate(int(w.NumPages()))
	var streams []core.AccessStream
	if m, ok := w.(*workload.Metis); ok {
		streams = m.StreamsOn(s.Eng, threads, seed)
	} else {
		streams = w.Streams(threads, seed)
	}
	return s.Run(streams)
}

// Fig17 reproduces Figure 17: the cumulative technique breakdown
// (Baseline → +Pipelined → +LRU partitioning → +MultiLayer allocator) on
// GapBS and XSBench across offload levels.
func Fig17(sc Scale) []*Table {
	var out []*Table
	for _, app := range []struct {
		id, title string
		mk        func() workload.Workload
	}{
		{"fig17a", "GapBS technique breakdown (48 threads)",
			func() workload.Workload { return workload.NewGapBS(sc.GapBS) }},
		{"fig17b", "XSBench technique breakdown (48 threads)",
			func() workload.Workload { return workload.NewXSBench(sc.XS) }},
	} {
		t := &Table{
			ID:     app.id,
			Title:  app.title,
			Header: []string{"far-mem%", "Baseline j/h", "+Pipelined j/h", "+LRU-part j/h", "+MultiLayer j/h"},
		}
		offs := []float64{0.2, 0.4, 0.6}
		const steps = 4 // Baseline, +Pipelined, +LRU-part, +MultiLayer
		jph := runCells(sc, len(offs)*steps, func(i int) float64 {
			off, step := offs[i/steps], i%steps
			w0 := app.mk()
			local := localPagesFor(w0.NumPages(), off)
			cfg := ablationSteps(sc.Threads, w0.NumPages(), local)[step]
			res := runCfg(cfg, app.mk(), sc.Threads, sc.Seed)
			return res.JobsPerHour()
		})
		for oi, off := range offs {
			row := []string{fmtPct(off)}
			for step := 0; step < steps; step++ {
				row = append(row, fmtF1(jph[oi*steps+step]))
			}
			t.AddRow(row...)
		}
		t.Notes = append(t.Notes,
			"paper: at 20% offload pipelining alone gives 1.58x (GapBS) / 1.74x (XSBench); LRU partitioning and the multi-layer allocator add ~5%/8% more offloadable memory")
		out = append(out, t)
	}
	return out
}

// Fig18 reproduces Figure 18: (a) the eviction batch-size sweep for
// pipelined vs non-pipelined designs, and (b) the 4-thread regression
// test.
func Fig18(sc Scale) []*Table {
	a := &Table{
		ID:     "fig18a",
		Title:  "Eviction batch-size sweep on GapBS, 20% offload (48 threads)",
		Header: []string{"batch", "pipelined j/h", "non-pipelined j/h"},
	}
	w := func() workload.Workload { return workload.NewGapBS(sc.GapBS) }
	total := w().NumPages()
	local := localPagesFor(total, 0.2)
	batches := []int{32, 64, 128, 256, 512}
	type point struct{ pip, seq float64 }
	results := runCells(sc, len(batches), func(i int) point {
		batch := batches[i]
		pip := core.MageLib(sc.Threads, total, local)
		pip.BatchSize = batch
		pip.TLBBatch = batch
		pip.Name = fmt.Sprintf("pip-%d", batch)
		seq := core.MageLib(sc.Threads, total, local)
		seq.Pipelined = false
		seq.BatchSize = batch
		seq.TLBBatch = batch
		seq.Name = fmt.Sprintf("seq-%d", batch)
		rp := runCfg(pip, w(), sc.Threads, sc.Seed)
		rs := runCfg(seq, w(), sc.Threads, sc.Seed)
		return point{rp.JobsPerHour(), rs.JobsPerHour()}
	})
	for i, batch := range batches {
		a.AddRow(fmt.Sprintf("%d", batch), fmtF1(results[i].pip), fmtF1(results[i].seq))
	}
	a.Notes = append(a.Notes,
		"paper: pipelined peaks at batch 128-256 where RDMA wait fully hides TLB latency; non-pipelined gains nothing from larger batches")

	b := offloadSweep("fig18b",
		fmt.Sprintf("Regression test: GapBS at %d threads (low fault-in demand)", sc.RegressionThreads),
		sc, w, systemNames, sc.RegressionThreads, nil)
	b.Notes = append(b.Notes,
		"paper: with 4 threads all systems are comparable; MAGE's throughput-oriented design causes no low-load regression")
	return []*Table{a, b}
}

// Table1 renders the application catalog.
func Table1(Scale) []*Table {
	t := &Table{
		ID:     "table1",
		Title:  "Applications used to evaluate MAGE",
		Header: []string{"category", "application", "dataset", "paper size", "characteristic"},
	}
	for _, e := range workload.Table1() {
		t.AddRow(e.Category, e.Application, e.Dataset, e.Size, e.Characteristic)
	}
	return []*Table{t}
}

// Table2 reproduces Table 2: all batch applications at 100% local memory
// — the virtualization / maturity cost with no offloading, relative to
// the best system (Hermit, bare metal).
func Table2(sc Scale) []*Table {
	t := &Table{
		ID:     "table2",
		Title:  "100% local memory performance (no offloading)",
		Header: []string{"workload", "Hermit", "DiLOS", "MageLib", "MageLnx", "unit"},
	}
	apps := []struct {
		name string
		mk   func() workload.Workload
	}{
		{"GapBS", func() workload.Workload { return workload.NewGapBS(sc.GapBS) }},
		{"XSBench", func() workload.Workload { return workload.NewXSBench(sc.XS) }},
		{"SeqScan", func() workload.Workload { return workload.NewSeqScan(sc.Seq) }},
		{"Gups", func() workload.Workload { return workload.NewGUPS(sc.Gups) }},
		{"Metis", func() workload.Workload { return workload.NewMetis(sc.Metis) }},
	}
	sysNames := []string{"Hermit", "DiLOS", "MageLib", "MageLnx"}
	jph := runCells(sc, len(apps)*len(sysNames), func(i int) float64 {
		app, sys := apps[i/len(sysNames)], sysNames[i%len(sysNames)]
		res := runStreams(sys, sc.Threads, app.mk(), 0, sc.Seed, nil)
		return res.JobsPerHour()
	})
	for ai, app := range apps {
		row := []string{app.name}
		// The Hermit-relative deltas are derived after the fan-out, from
		// the collected cells.
		hermit := jph[ai*len(sysNames)]
		for si, sys := range sysNames {
			v := jph[ai*len(sysNames)+si]
			if sys == "Hermit" {
				row = append(row, fmtF1(v))
			} else {
				rel := 0.0
				if hermit > 0 {
					rel = v/hermit - 1
				}
				row = append(row, fmt.Sprintf("%s (%+.1f%%)", fmtF1(v), rel*100))
			}
		}
		row = append(row, "jobs/h")
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: Hermit (bare metal) wins by 2-8% on most apps; virtualization (EPT, VM exits) and OSv's immature userspace explain the gap")
	return []*Table{t}
}
