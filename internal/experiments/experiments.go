// Package experiments regenerates every table and figure of the paper's
// evaluation (§6). Each Fig*/Table* function assembles the systems and
// workloads, runs them on the simulation substrate, and returns printable
// tables whose rows correspond to the points in the original plot.
//
// Absolute numbers come from a scaled-down simulated testbed; the claims
// to check are the shapes: who wins, by roughly what factor, and where
// the crossovers fall. See EXPERIMENTS.md for the paper-vs-measured
// record.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"mage/internal/core"
	"mage/internal/parexp"
	"mage/internal/sim"
	"mage/internal/workload"
)

// Table is one printable result table (usually one figure panel).
type Table struct {
	ID     string // e.g. "fig1"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// WriteCSV renders the table as RFC-4180 CSV (for plotting scripts).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Print renders the table with aligned columns. Write errors are
// discarded: the only callers print to stdout, where a failure has no
// useful recovery.
func (t *Table) Print(w io.Writer) {
	_, _ = fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		_, _ = fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		_, _ = fmt.Fprintf(w, "note: %s\n", n)
	}
	_, _ = fmt.Fprintln(w)
}

// Scale bundles workload sizes and sweep granularity so the same
// experiment code runs at test speed or at CLI depth.
type Scale struct {
	Threads           int
	RegressionThreads int
	Offloads          []float64 // fraction of WSS that is remote
	ThreadSweep       []int

	GapBS workload.GapBSParams
	XS    workload.XSBenchParams
	Seq   workload.SeqScanParams
	Gups  workload.GUPSParams
	Metis workload.MetisParams
	MC    workload.MemcachedParams

	// Colo sizes the multi-tenant co-location sweep.
	Colo ColocateParams

	// Rack sizes the rack-scale cross-node eviction sweeps (extrack).
	Rack RackScale

	// MicroPagesPerThread sizes the sequential-read microbenchmark.
	MicroPagesPerThread int
	// MCLoads is the offered-load sweep for Fig 13b (ops/s).
	MCLoads []float64
	// MCFixedLoad is Fig 13a's fixed load (ops/s).
	MCFixedLoad float64
	// MCDuration is the open-loop run length.
	MCDuration sim.Time
	// Seed is the master seed.
	Seed int64
	// Workers caps the host goroutines regenerating a figure's cells
	// (<= 0 means GOMAXPROCS; 1 forces the sequential reference path).
	// Output is byte-identical at any setting: each cell runs on its own
	// engine, seeded from the cell's identity, and results are collected
	// in cell order. See internal/parexp.
	Workers int
}

// Quick returns a scale suitable for tests and `go test -bench`: every
// experiment completes in seconds.
func Quick() Scale {
	return Scale{
		Threads:           48,
		RegressionThreads: 4,
		Offloads:          []float64{0.1, 0.3, 0.5, 0.9},
		ThreadSweep:       []int{4, 16, 32, 48},

		GapBS: workload.GapBSParams{Scale: 18, EdgeFactor: 32, Iterations: 2, BytesPerVertex: 16, Seed: 42},
		XS: workload.XSBenchParams{Gridpoints: 1 << 17, Nuclides: 64,
			LookupsPerThread: 2000, NuclidesPerLookup: 12},
		Seq: workload.SeqScanParams{Pages: 20 << 10, Iterations: 2, ComputePerPage: 4000},
		Gups: workload.GUPSParams{Pages: 16 << 10, UpdatesPerThread: 4000, PhaseSplit: 0.5,
			HotFrac: 0.8, Theta: 0.99, ComputePerUpdate: 250},
		Metis: workload.MetisParams{InputPages: 10 << 10, IntermediatePages: 6 << 10,
			OutputPages: 1 << 10, EmitsPerInputPage: 2, MapCompute: 900, ReduceCompute: 700},
		MC: workload.MemcachedParams{Keys: 1 << 17, ValueBytes: 256, Theta: 0.99,
			GetFraction: 0.998, ComputePerOp: 1500},

		Colo: ColocateParams{
			Tenants:          []int{2, 4, 8},
			Ratios:           []float64{0.5, 0.75},
			ThreadsPerTenant: 6,
			Zipf: workload.ZipfParams{Pages: 6 << 10, AccessesPerThread: 2500,
				Theta: 0.99, WriteFraction: 0.3, ComputePerAccess: 1500},
			Seq: workload.SeqScanParams{Pages: 6 << 10, Iterations: 1, ComputePerPage: 1500},
			Gups: workload.GUPSParams{Pages: 6 << 10, UpdatesPerThread: 2500, PhaseSplit: 0.5,
				HotFrac: 0.8, Theta: 0.99, ComputePerUpdate: 250},
		},

		Rack: RackScale{NodeCounts: []int{4, 8, 16}, DegradeNodes: 8, AccessesPerThread: 2000},

		MicroPagesPerThread: 1000,
		MCLoads:             []float64{0.2e6, 0.5e6, 1e6, 1.5e6},
		MCFixedLoad:         0.8e6,
		MCDuration:          25 * sim.Millisecond,
		Seed:                1,
	}
}

// Full returns the CLI scale: larger working sets and denser sweeps
// (minutes, not seconds).
func Full() Scale {
	s := Quick()
	s.Offloads = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	s.ThreadSweep = []int{1, 4, 8, 16, 24, 28, 32, 40, 48}
	s.GapBS = workload.GapBSParams{Scale: 19, EdgeFactor: 32, Iterations: 2, BytesPerVertex: 16, Seed: 42}
	s.XS = workload.XSBenchParams{Gridpoints: 1 << 18, Nuclides: 64,
		LookupsPerThread: 4000, NuclidesPerLookup: 12}
	s.Seq = workload.SeqScanParams{Pages: 64 << 10, Iterations: 2, ComputePerPage: 4000}
	s.Gups = workload.GUPSParams{Pages: 48 << 10, UpdatesPerThread: 12000, PhaseSplit: 0.5,
		HotFrac: 0.8, Theta: 0.99, ComputePerUpdate: 250}
	s.Metis = workload.MetisParams{InputPages: 24 << 10, IntermediatePages: 14 << 10,
		OutputPages: 2 << 10, EmitsPerInputPage: 2, MapCompute: 900, ReduceCompute: 700}
	s.MC = workload.MemcachedParams{Keys: 1 << 19, ValueBytes: 256, Theta: 0.99,
		GetFraction: 0.998, ComputePerOp: 1500}
	s.Colo = ColocateParams{
		Tenants:          []int{2, 3, 4, 6, 8},
		Ratios:           []float64{0.4, 0.6, 0.8},
		ThreadsPerTenant: 6,
		Zipf: workload.ZipfParams{Pages: 16 << 10, AccessesPerThread: 6000,
			Theta: 0.99, WriteFraction: 0.3, ComputePerAccess: 1500},
		Seq: workload.SeqScanParams{Pages: 16 << 10, Iterations: 1, ComputePerPage: 1500},
		Gups: workload.GUPSParams{Pages: 16 << 10, UpdatesPerThread: 6000, PhaseSplit: 0.5,
			HotFrac: 0.8, Theta: 0.99, ComputePerUpdate: 250},
	}
	s.Rack = RackScale{NodeCounts: []int{4, 8, 12, 16}, DegradeNodes: 16, AccessesPerThread: 8000}
	s.MicroPagesPerThread = 5000
	s.MCLoads = []float64{0.2e6, 0.4e6, 0.8e6, 1.2e6, 1.6e6, 2.0e6}
	s.MCDuration = 60 * sim.Millisecond
	return s
}

// localPagesFor converts an offload fraction into a local DRAM quota.
// offload 0 gets headroom above the WSS so steady state never evicts.
func localPagesFor(total uint64, offload float64) int {
	if offload <= 0 {
		return int(total) + int(total)/6 + 4096
	}
	n := int(float64(total) * (1 - offload))
	if n < 64 {
		n = 64
	}
	return n
}

// systemNames is the figure ordering of the compared systems.
var systemNames = []string{"Ideal", "Hermit", "DiLOS", "MageLib", "MageLnx"}

// buildSystem constructs a preset system for a workload at an offload
// fraction, warm-started like the paper's runs (cold gap spread evenly).
func buildSystem(name string, threads int, total uint64, offload float64, mutate func(*core.Config)) *core.System {
	return buildSystemPrepop(name, threads, total, offload, mutate, true)
}

// buildSystemPrepop is buildSystem with explicit prepopulation mode:
// spread=false keeps the front of the address space resident (for
// phase-change workloads whose first phase lives there).
func buildSystemPrepop(name string, threads int, total uint64, offload float64, mutate func(*core.Config), spread bool) *core.System {
	s := buildSystemRaw(name, threads, total, offload, mutate)
	if spread {
		s.Prepopulate(int(total))
	} else {
		s.PrepopulateFront(int(total))
	}
	return s
}

// buildSystemRaw builds the system without warm-starting it.
func buildSystemRaw(name string, threads int, total uint64, offload float64, mutate func(*core.Config)) *core.System {
	cfg, err := core.Preset(name, threads, total, localPagesFor(total, offload))
	if err != nil {
		panic(err)
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return core.MustNewSystem(cfg)
}

// zeroFiller is implemented by workloads with runtime-allocated regions
// that have no initial remote content.
type zeroFiller interface{ ZeroFillRanges() [][2]uint64 }

// applyZeroFill marks a workload's anonymous regions on the system; must
// run before prepopulation.
func applyZeroFill(s *core.System, w workload.Workload) {
	if zf, ok := w.(zeroFiller); ok {
		for _, r := range zf.ZeroFillRanges() {
			s.MarkZeroFill(r[0], r[1])
		}
	}
}

// runStreams executes a workload on a fresh preset system. Anonymous
// regions are marked zero-fill before the warm start; phase-change
// workloads (Metis) get front prepopulation so their first phase starts
// resident.
func runStreams(name string, threads int, w workload.Workload, offload float64, seed int64, mutate func(*core.Config)) core.RunResult {
	s := buildSystemRaw(name, threads, w.NumPages(), offload, mutate)
	applyZeroFill(s, w)
	if _, front := w.(*workload.Metis); front {
		s.PrepopulateFront(int(w.NumPages()))
	} else {
		s.Prepopulate(int(w.NumPages()))
	}
	var streams []core.AccessStream
	if m, ok := w.(*workload.Metis); ok {
		streams = m.StreamsOn(s.Eng, threads, seed)
	} else {
		streams = w.Streams(threads, seed)
	}
	return s.RunWithOptions(streams, core.RunOptions{})
}

// runCells evaluates a figure's n grid cells — each a self-contained
// simulation on a private engine — and returns the results in cell
// order, fanning out across sc.Workers host goroutines. fn must derive
// any randomness from the cell index and scale parameters only, never
// from worker identity, so the rendered tables are byte-identical to a
// sequential run.
func runCells[T any](sc Scale, n int, fn func(i int) T) []T {
	return parexp.Map(n, sc.Workers, fn)
}

func fmtF(v float64) string  { return fmt.Sprintf("%.2f", v) }
func fmtF1(v float64) string { return fmt.Sprintf("%.1f", v) }
func fmtPct(v float64) string {
	return fmt.Sprintf("%.1f%%", v*100)
}
func fmtUs(ns int64) string { return fmt.Sprintf("%.1f", float64(ns)/1e3) }
