package experiments

import (
	"fmt"

	"mage/internal/core"
	"mage/internal/faultinject"
	"mage/internal/workload"
)

// ColocateParams sizes the multi-tenant co-location sweep: how many
// tenants share one node, how much local DRAM the node holds relative to
// their aggregate WSS, and the shape of each tenant's workload. Tenant i
// runs coloKinds[i % 3], so every grid cell mixes skewed-random,
// sequential-scan, and phase-changing tenants.
type ColocateParams struct {
	// Tenants is the tenant-count sweep (2–8).
	Tenants []int
	// Ratios is local DRAM as a fraction of the aggregate WSS; below 1.0
	// the tenants compete for frames through the shared eviction pipeline.
	Ratios []float64
	// ThreadsPerTenant is each tenant's app thread count. Tenants may not
	// share cores (per-core TLBs cache tenant-local page numbers), so
	// max(Tenants) × ThreadsPerTenant must fit the machine.
	ThreadsPerTenant int

	Zipf workload.ZipfParams
	Seq  workload.SeqScanParams
	Gups workload.GUPSParams
}

// coloKinds is the repeating tenant-workload mix.
var coloKinds = []string{"zipf", "seqscan", "gups"}

func coloWorkload(p ColocateParams, kind string) workload.Workload {
	switch kind {
	case "zipf":
		return workload.NewZipf(p.Zipf)
	case "seqscan":
		return workload.NewSeqScan(p.Seq)
	default:
		return workload.NewGUPS(p.Gups)
	}
}

// coloSolo runs one tenant kind alone on a node provisioned at the same
// local-DRAM ratio — the isolation baseline its co-located p99 is
// compared against.
func coloSolo(sc Scale, kind string, ratio float64) core.RunResult {
	p := sc.Colo
	w := coloWorkload(p, kind)
	seed := faultinject.DeriveSeed(sc.Seed, "colocate", "solo", kind, fmt.Sprintf("r%g", ratio))
	return runStreams("MageLib", p.ThreadsPerTenant, w, 1-ratio, seed, nil)
}

// coloRun builds an nt-tenant node at the given local-DRAM ratio and runs
// all tenants to completion, returning per-tenant results in id order.
func coloRun(sc Scale, nt int, ratio float64) []core.RunResult {
	p := sc.Colo
	wls := make([]workload.Workload, nt)
	specs := make([]core.TenantSpec, nt)
	var aggregate uint64
	for i := range wls {
		kind := coloKinds[i%len(coloKinds)]
		wls[i] = coloWorkload(p, kind)
		specs[i] = core.TenantSpec{
			Name:       fmt.Sprintf("t%d:%s", i, kind),
			AppThreads: p.ThreadsPerTenant,
			TotalPages: wls[i].NumPages(),
		}
		aggregate += wls[i].NumPages()
	}
	cfg, err := core.Preset("MageLib", nt*p.ThreadsPerTenant, aggregate,
		localPagesFor(aggregate, 1-ratio))
	if err != nil {
		panic(err)
	}
	node, err := core.NewNode(cfg, specs)
	if err != nil {
		panic(err)
	}
	tenants := node.Tenants()
	for i, t := range tenants {
		if zf, ok := wls[i].(zeroFiller); ok {
			for _, r := range zf.ZeroFillRanges() {
				t.MarkZeroFill(r[0], r[1])
			}
		}
	}
	// Fair-share warm start: split the node's population budget among the
	// tenants in proportion to their working sets, mirroring the solo
	// baseline's per-tenant ratio.
	budget := uint64(node.PrepopBudget())
	for i, t := range tenants {
		t.Prepopulate(int(budget * wls[i].NumPages() / aggregate))
	}
	streams := make([][]core.AccessStream, nt)
	for i, w := range wls {
		seed := faultinject.DeriveSeed(sc.Seed, "colocate",
			fmt.Sprintf("n%d", nt), fmt.Sprintf("r%g", ratio), fmt.Sprintf("t%d", i))
		streams[i] = w.Streams(p.ThreadsPerTenant, seed)
	}
	return node.RunTenants(streams, core.RunOptions{})
}

// Colocate sweeps tenant count × local-DRAM ratio on one shared Mage^LIB
// node. Victim selection is node-global, so each tenant's fault storm
// evicts its neighbours' cold pages; the table reports per-tenant fault
// latency, eviction counts, and an isolation metric — the tenant's
// co-located p99 over its solo p99 at the same provisioning ratio.
func Colocate(sc Scale) []*Table {
	p := sc.Colo
	t := &Table{
		ID: "colocate",
		Title: fmt.Sprintf("Co-located tenants, Mage^LIB (%d threads/tenant; local = ratio × aggregate WSS)",
			p.ThreadsPerTenant),
		Header: []string{"tenants", "local/WSS", "tenant", "faults", "evicted",
			"p99 µs", "solo p99 µs", "p99 inflation"},
	}

	// Solo baselines: one per (kind, ratio).
	type soloKey struct {
		kind  string
		ratio float64
	}
	var solos []soloKey
	for _, r := range p.Ratios {
		for _, k := range coloKinds {
			solos = append(solos, soloKey{k, r})
		}
	}
	soloRes := runCells(sc, len(solos), func(i int) core.RunResult {
		return coloSolo(sc, solos[i].kind, solos[i].ratio)
	})
	soloP99 := make(map[soloKey]int64, len(solos))
	for i, k := range solos {
		soloP99[k] = soloRes[i].Metrics.FaultP99Ns
	}

	type coloCell struct {
		nt    int
		ratio float64
	}
	var cells []coloCell
	for _, r := range p.Ratios {
		for _, nt := range p.Tenants {
			cells = append(cells, coloCell{nt, r})
		}
	}
	results := runCells(sc, len(cells), func(i int) []core.RunResult {
		return coloRun(sc, cells[i].nt, cells[i].ratio)
	})
	for ci, c := range cells {
		for i, res := range results[ci] {
			kind := coloKinds[i%len(coloKinds)]
			m := res.Metrics
			sp99 := soloP99[soloKey{kind, c.ratio}]
			infl := "-"
			if sp99 > 0 {
				infl = fmtF(float64(m.FaultP99Ns) / float64(sp99))
			}
			t.AddRow(fmt.Sprintf("%d", c.nt), fmtPct(c.ratio),
				fmt.Sprintf("t%d:%s", i, kind),
				fmt.Sprintf("%d", m.MajorFaults),
				fmt.Sprintf("%d", m.EvictedPages),
				fmtUs(m.FaultP99Ns), fmtUs(sp99), infl)
		}
	}
	t.Notes = append(t.Notes,
		"eviction is node-global: a tenant's p99 inflation measures its neighbours' pressure on the shared frame pool, not its own overcommit",
		"seqscan inflates least (prefetch hides refaults); zipf and gups trade p99 through the shared LRU as tenant count grows")
	return []*Table{t}
}
