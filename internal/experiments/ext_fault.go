package experiments

import (
	"fmt"

	"mage/internal/core"
	"mage/internal/faultinject"
	"mage/internal/sim"
)

// ExtFaultTolerance is the fault-tolerance sweep: how tail latency and
// fault throughput respond to injected RDMA failures and memnode
// downtime. Two grids, both on the sequential-read microbenchmark at
// 50% offload (every access a major fault, so the fault path is the
// whole story):
//
//   - a per-op failure-rate sweep (NACK probability on reads and
//     writes), showing the retry layer's cost climbing from zero;
//   - a downtime sweep (periodic memnode outages), showing timeouts,
//     give-ups, and degraded-mode residence absorbing the outage.
//
// Every cell's injector seed derives from the master seed plus the cell
// identity, so the grid renders byte-identical at any worker count.
func ExtFaultTolerance(sc Scale) []*Table {
	return []*Table{faultRateSweep(sc), outageSweep(sc)}
}

// faultPlanMutate attaches a plan to a config cell.
func faultPlanMutate(pl faultinject.Plan) func(*core.Config) {
	return func(c *core.Config) {
		p := pl
		c.FaultPlan = &p
	}
}

func faultRateSweep(sc Scale) *Table {
	t := &Table{
		ID:    "extfault",
		Title: "Fault-rate sweep: seq-read micro, 50% offload (NACK prob on READ+WRITE)",
		Header: []string{"fail-rate", "system", "fault Mops/s", "p99 µs",
			"retries", "timeouts", "give-ups", "degraded ms"},
	}
	rates := []float64{0, 0.002, 0.01, 0.05}
	systems := []string{"Hermit", "MageLib"}
	type cell struct {
		rate float64
		sys  string
	}
	var cells []cell
	for _, r := range rates {
		for _, sys := range systems {
			cells = append(cells, cell{r, sys})
		}
	}
	results := runCells(sc, len(cells), func(i int) core.RunResult {
		c := cells[i]
		var mutate func(*core.Config)
		if c.rate > 0 {
			mutate = faultPlanMutate(faultinject.Plan{
				Seed:          faultinject.DeriveSeed(sc.Seed, "extfault", "rate", c.sys, fmt.Sprintf("%g", c.rate)),
				ReadFailProb:  c.rate,
				WriteFailProb: c.rate,
				SpikeProb:     c.rate,
				SpikeMin:      sim.Microsecond,
				SpikeMax:      25 * sim.Microsecond,
			})
		}
		_, res := microRun(c.sys, sc.Threads, sc.MicroPagesPerThread, 0.5, mutate)
		return res
	})
	for i, c := range cells {
		res := results[i]
		m := res.Metrics
		mops := float64(m.MajorFaults) / res.Makespan.Seconds() / 1e6
		t.AddRow(fmtPct(c.rate), c.sys, fmtF(mops), fmtUs(m.FaultP99Ns),
			fmt.Sprintf("%d", m.FaultRetries+m.EvictRetries),
			fmt.Sprintf("%d", m.FaultTimeouts+m.EvictTimeouts),
			fmt.Sprintf("%d", m.FaultGiveUps),
			fmtF(float64(m.DegradedNs)/1e6))
	}
	t.Notes = append(t.Notes,
		"NACKs cost one round trip + capped-exponential backoff; throughput degrades smoothly while p99 absorbs the retries",
		"rate 0 attaches no injector: the row must match the fault-free baseline exactly")
	return t
}

func outageSweep(sc Scale) *Table {
	t := &Table{
		ID:    "extfault-outage",
		Title: "Downtime sweep: seq-read micro, 50% offload (periodic memnode outages)",
		Header: []string{"downtime", "system", "fault Mops/s", "p99 µs",
			"timeouts", "give-ups", "degraded ms"},
	}
	// Outage schedules in virtual time, sized so even the small
	// determinism-scale runs (makespan ~a few ms) cross several windows.
	downs := []struct {
		label string
		down  sim.Time
	}{
		{"none", 0},
		{"100µs/500µs", 100 * sim.Microsecond},
		{"250µs/500µs", 250 * sim.Microsecond},
	}
	systems := []string{"Hermit", "MageLib"}
	type cell struct {
		di  int
		sys string
	}
	var cells []cell
	for di := range downs {
		for _, sys := range systems {
			cells = append(cells, cell{di, sys})
		}
	}
	results := runCells(sc, len(cells), func(i int) core.RunResult {
		c := cells[i]
		d := downs[c.di]
		var mutate func(*core.Config)
		if d.down > 0 {
			mutate = faultPlanMutate(faultinject.Plan{
				Seed: faultinject.DeriveSeed(sc.Seed, "extfault", "outage", c.sys, d.label),
				Outages: faultinject.PeriodicOutages(
					200*sim.Microsecond, 500*sim.Microsecond, d.down, 50),
			})
		}
		_, res := microRun(c.sys, sc.Threads, sc.MicroPagesPerThread, 0.5, mutate)
		return res
	})
	for i, c := range cells {
		res := results[i]
		m := res.Metrics
		mops := float64(m.MajorFaults) / res.Makespan.Seconds() / 1e6
		t.AddRow(downs[c.di].label, c.sys, fmtF(mops), fmtUs(m.FaultP99Ns),
			fmt.Sprintf("%d", m.FaultTimeouts+m.EvictTimeouts),
			fmt.Sprintf("%d", m.FaultGiveUps),
			fmtF(float64(m.DegradedNs)/1e6))
	}
	t.Notes = append(t.Notes,
		"during an outage every remote op times out; after MaxAttempts the path parks in degraded mode until the scheduled recovery",
		"evictors throttle while the node is down, so give-up counts track the fault path, not the eviction pipeline")
	return t
}
