package experiments

import (
	"fmt"

	"mage/internal/core"
)

// Claims runs a compact self-check of the paper's headline claims on the
// sequential-read microbenchmark and reports PASS/FAIL per claim — an
// artifact-evaluation smoke test (`magesim -exp claims`).
func Claims(sc Scale) []*Table {
	t := &Table{
		ID:     "claims",
		Title:  "Headline-claim self-check (seq-read microbenchmark)",
		Header: []string{"claim", "paper", "measured", "verdict"},
	}
	check := func(name, paper, measured string, ok bool) {
		verdict := "PASS"
		if !ok {
			verdict = "FAIL"
		}
		t.AddRow(name, paper, measured, verdict)
	}

	th := sc.Threads
	pages := sc.MicroPagesPerThread

	// The seven microbenchmark runs are independent cells.
	type cell struct {
		name      string
		localFrac float64
	}
	cells := []cell{
		{"Hermit", 1.0}, {"DiLOS", 1.0}, {"MageLib", 1.0},
		{"Hermit", 0.5}, {"DiLOS", 0.5}, {"MageLib", 0.5}, {"MageLnx", 0.5},
	}
	type point struct {
		mops float64
		res  core.RunResult
	}
	results := runCells(sc, len(cells), func(i int) point {
		mops, res := microRun(cells[i].name, th, pages, cells[i].localFrac, nil)
		return point{mops, res}
	})
	hermitFO, dilosFO, mageFO := results[0].mops, results[1].mops, results[2].mops
	ideal := 5.86

	check("DiLOS fault-only hits ~56% of the ideal link limit",
		"56%", fmtPct(dilosFO/ideal),
		dilosFO/ideal > 0.40 && dilosFO/ideal < 0.75)
	check("Hermit fault-only stalls far below ideal",
		"~20%", fmtPct(hermitFO/ideal), hermitFO/ideal < 0.45)
	check("Mage^LIB fault-only approaches the link limit",
		">90%", fmtPct(mageFO/ideal), mageFO/ideal > 0.85)

	// Fault + eviction at 50% offload.
	hermitEv, hermitRes := results[3].mops, results[3].res
	dilosEv := results[4].mops
	mageEv, mageRes := results[5].mops, results[5].res
	lnxEv, lnxRes := results[6].mops, results[6].res

	check("eviction halves DiLOS's fault throughput",
		"56%→30% of ideal", fmt.Sprintf("%s→%s", fmtPct(dilosFO/ideal), fmtPct(dilosEv/ideal)),
		dilosEv < dilosFO)
	check("MAGE outperforms Hermit under eviction (paper: up to 7.1x goodput)",
		"3-7x", fmt.Sprintf("%.1fx", mageEv/hermitEv), mageEv > 2*hermitEv)
	check("MAGE outperforms DiLOS under eviction (paper: 3.1x goodput)",
		">1x", fmt.Sprintf("%.1fx", mageEv/dilosEv), mageEv > dilosEv)
	check("MAGE never evicts synchronously (P1)",
		"0", fmt.Sprintf("%d+%d", mageRes.Metrics.SyncEvicts, lnxRes.Metrics.SyncEvicts),
		mageRes.Metrics.SyncEvicts == 0 && lnxRes.Metrics.SyncEvicts == 0)
	check("baselines fall back to synchronous eviction",
		">0", fmt.Sprintf("%d", hermitRes.Metrics.SyncEvicts),
		hermitRes.Metrics.SyncEvicts > 0)
	check("MAGE cuts p99 fault latency vs Hermit (paper: 255µs → 12µs)",
		"~20x", fmt.Sprintf("%.0fx", float64(hermitRes.Metrics.FaultP99Ns)/float64(mageRes.Metrics.FaultP99Ns)),
		mageRes.Metrics.FaultP99Ns*4 < hermitRes.Metrics.FaultP99Ns)
	check("no fault-path TLB time in MAGE (always-asynchronous decoupling)",
		"0µs", fmt.Sprintf("%.2fµs", mageRes.Metrics.BreakdownNs[core.CompTLB]/1e3),
		mageRes.Metrics.BreakdownNs[core.CompTLB] < 100)
	_ = lnxEv
	t.Notes = append(t.Notes,
		"runs the §3.2 sequential-read microbenchmark at quick scale; see EXPERIMENTS.md for the full per-figure record")
	return []*Table{t}
}
