package experiments

import (
	"fmt"

	"mage/internal/core"
	"mage/internal/nic"
	"mage/internal/workload"
)

// The ext* experiments go beyond the paper's figures: they probe claims
// the paper makes in prose (the 4-evictor sweet spot, backend
// generality) and the design alternative it discusses but rejects
// (S3-FIFO page accounting).

// ExtEvictors sweeps the dedicated-evictor-thread count on the
// sequential-read microbenchmark. The paper asserts "four evictor
// threads provide a sweet spot ... additional eviction threads beyond
// four do not improve throughput" (§4.1, §6.1).
func ExtEvictors(sc Scale) []*Table {
	t := &Table{
		ID:     "extevict",
		Title:  "Evictor-thread sweep, Mage^LIB seq read (48 threads, 50% offload)",
		Header: []string{"evictors", "fault Mops/s", "Rx Gbps", "free-wait ms"},
	}
	evictors := []int{1, 2, 4, 8, 16}
	type point struct {
		mops float64
		res  core.RunResult
	}
	results := runCells(sc, len(evictors), func(i int) point {
		ev := evictors[i]
		mops, res := microRun("MageLib", sc.Threads, sc.MicroPagesPerThread, 0.5,
			func(c *core.Config) { c.EvictorThreads = ev })
		return point{mops, res}
	})
	for i, ev := range evictors {
		p := results[i]
		t.AddRow(fmt.Sprintf("%d", ev), fmtF(p.mops), fmtF1(p.res.Metrics.RxGbps),
			fmtF(float64(p.res.Metrics.FreeWaitNs)/1e6))
	}
	t.Notes = append(t.Notes,
		"paper: 4 evictors saturate the 200 Gbps NIC; more only add synchronization overhead",
		"simulation caveat: at scaled-down working sets eviction is scan-CPU-bound rather than NIC-bound, so extra evictors keep helping longer than on the testbed")
	return []*Table{t}
}

// ExtAccounting compares the four page-accounting designs — including the
// S3-FIFO adaptation the paper rejects for its tracking granularity — on
// GapBS, separating replacement accuracy (faults) from contention (lock
// wait).
func ExtAccounting(sc Scale) []*Table {
	t := &Table{
		ID:     "extacct",
		Title:  "Page-accounting designs on GapBS (48 threads, 50% offload)",
		Header: []string{"accounting", "jobs/h", "faults", "acct-wait ms", "p99 µs"},
	}
	kinds := []struct {
		name string
		kind core.AccountingKind
	}{
		{"global-lru", core.AcctGlobalLRU},
		{"two-list", core.AcctTwoList},
		{"partitioned", core.AcctPartitioned},
		{"per-cpu-fifo", core.AcctPerCPUFIFO},
		{"s3fifo", core.AcctS3FIFO},
	}
	results := runCells(sc, len(kinds), func(i int) core.RunResult {
		k := kinds[i]
		return runStreams("MageLib", sc.Threads,
			workload.NewGapBS(sc.GapBS), 0.5, sc.Seed,
			func(c *core.Config) { c.Accounting = k.kind })
	})
	for i, k := range kinds {
		res := results[i]
		t.AddRow(k.name, fmtF1(res.JobsPerHour()),
			fmt.Sprintf("%d", res.Metrics.MajorFaults),
			fmtF(float64(res.Metrics.AcctLockWaitNs)/1e6),
			fmtUs(res.Metrics.FaultP99Ns))
	}
	t.Notes = append(t.Notes,
		"paper §4.2.2: partitioning trades accuracy for contention; S3-FIFO needs per-access frequency the page table cannot provide (here approximated with the accessed bit)")
	return []*Table{t}
}

// ExtBackends runs GapBS on the three swap backends the conclusion names
// (RDMA, NVMe SSD, zswap), for Hermit and Mage^LIB, to verify the design
// principles transfer.
func ExtBackends(sc Scale) []*Table {
	t := &Table{
		ID:     "extbackend",
		Title:  "Swap backends: GapBS at 50% offload (48 threads)",
		Header: []string{"backend", "system", "jobs/h", "fault p99 µs", "sync evicts"},
	}
	type cell struct {
		be  nic.Backend
		sys string
	}
	var cells []cell
	for _, be := range []nic.Backend{nic.BackendRDMA, nic.BackendNVMe, nic.BackendZswap} {
		for _, sys := range []string{"Hermit", "MageLib"} {
			cells = append(cells, cell{be, sys})
		}
	}
	results := runCells(sc, len(cells), func(i int) core.RunResult {
		c := cells[i]
		return runStreams(c.sys, sc.Threads,
			workload.NewGapBS(sc.GapBS), 0.5, sc.Seed,
			func(cf *core.Config) { cf.Backend = c.be })
	})
	for i, c := range cells {
		res := results[i]
		t.AddRow(c.be.String(), c.sys, fmtF1(res.JobsPerHour()),
			fmtUs(res.Metrics.FaultP99Ns),
			fmt.Sprintf("%d", res.Metrics.SyncEvicts))
	}
	t.Notes = append(t.Notes,
		"paper conclusion: the OS-level optimizations apply to any fast swap backend; MAGE should lead on all three")
	return []*Table{t}
}
