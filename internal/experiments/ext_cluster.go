package experiments

import (
	"fmt"

	"mage/internal/faultinject"
	"mage/internal/memcluster/placement"
	"mage/internal/nic"
	"mage/internal/sim"
)

// ExtCluster is the DES twin of the real sharded memnode cluster
// (internal/memcluster): 3 shards × R replicas behind one NIC, the
// same rendezvous placement and weighted replica selection (both sides
// import internal/memcluster/placement), and the same chaos scenario
// the real cluster's acceptance test runs — one replica taken down in
// the middle of a read sweep.
//
// The table the sweep renders is the replication argument in one grid:
// with R=1 an outage turns into failed reads (every attempt burns the
// timeout); with R=2 the same outage turns into failovers — zero
// failed reads — plus a bounded p99 penalty, and the replica is
// re-admitted once its virtual-time backoff expires.
func ExtCluster(sc Scale) []*Table {
	t := &Table{
		ID:    "extcluster",
		Title: "Clustered memnode: 3 shards x R replicas, one replica failing (DES mirror of internal/memcluster)",
		Header: []string{"replicas", "scenario", "reads", "failed", "failovers",
			"readmits", "p99 µs"},
	}
	scenarios := []string{"none", "outage", "flaky"}
	type cell struct {
		replicas int
		scen     string
	}
	var cells []cell
	for _, r := range []int{1, 2} {
		for _, s := range scenarios {
			cells = append(cells, cell{r, s})
		}
	}
	type out struct {
		reads, failed, failovers, readmits uint64
		p99                                int64
	}
	results := runCells(sc, len(cells), func(i int) out {
		c := cells[i]
		const shards = 3
		eng := sim.NewEngine()
		n := nic.NewDefault(eng, nic.StackLibOS)
		// Replica 0 of shard 0 is the chaos target; everything else
		// never fails. Seeds derive from the cell identity so the grid
		// renders byte-identical at any worker count.
		injs := make([][]*faultinject.Injector, shards)
		for s := 0; s < shards; s++ {
			injs[s] = make([]*faultinject.Injector, c.replicas)
		}
		switch c.scen {
		case "outage":
			injs[0][0] = faultinject.MustNew(faultinject.Plan{
				Seed:    faultinject.DeriveSeed(sc.Seed, "extcluster", "outage", fmt.Sprintf("r%d", c.replicas)),
				Outages: []faultinject.Window{{Start: 200 * sim.Microsecond, End: 600 * sim.Microsecond}},
			})
		case "flaky":
			injs[0][0] = faultinject.MustNew(faultinject.Plan{
				Seed:         faultinject.DeriveSeed(sc.Seed, "extcluster", "flaky", fmt.Sprintf("r%d", c.replicas)),
				ReadFailProb: 0.05,
			})
		}
		cl := nic.NewCluster(n, injs)
		pages := sc.MicroPagesPerThread
		const timeout = 50 * sim.Microsecond
		for w := 0; w < sc.Threads; w++ {
			w := w
			eng.Spawn(fmt.Sprintf("sweep-%d", w), func(p *sim.Proc) {
				for i := 0; i < pages; i++ {
					key := placement.Key(1, uint64(w*pages+i))
					cl.TryReadKey(p, key, nic.PageSize, timeout)
					if i%8 == 0 {
						cl.TryWriteKey(p, key, nic.PageSize, timeout)
					}
				}
			})
		}
		eng.Run()
		return out{
			reads:     uint64(sc.Threads * pages),
			failed:    cl.FailedReads.Value(),
			failovers: cl.Failovers.Value(),
			readmits:  cl.Readmissions.Value(),
			p99:       cl.ReadLatency.P99(),
		}
	})
	for i, c := range cells {
		r := results[i]
		t.AddRow(fmt.Sprintf("%d", c.replicas), c.scen,
			fmt.Sprintf("%d", r.reads), fmt.Sprintf("%d", r.failed),
			fmt.Sprintf("%d", r.failovers), fmt.Sprintf("%d", r.readmits),
			fmtUs(r.p99))
	}
	t.Notes = append(t.Notes,
		"R=2 + outage must show zero failed reads: every read that hits the dead replica fails over to its peer — the DES statement of the real chaos test's zero-failed-reads bar",
		"R=1 + outage fails reads for the outage duration: with no peer the ladder's degraded tail burns the timeout and gives up",
		"placement and weighted selection are shared code with the real cluster (internal/memcluster/placement), so shard ownership here is bit-identical to production placement")
	return []*Table{t}
}
