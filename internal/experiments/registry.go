package experiments

import (
	"fmt"
	"sort"
)

// Runner regenerates one experiment at a given scale.
type Runner func(Scale) []*Table

// registry maps experiment IDs to their runners.
var registry = map[string]Runner{
	"fig1":   Fig1,
	"fig3":   Fig3,
	"fig4":   Fig4,
	"fig5":   Fig5,
	"fig6":   Fig6,
	"fig7":   Fig7,
	"fig9":   Fig9,
	"fig10":  Fig10,
	"fig11":  Fig11,
	"fig12":  Fig12,
	"fig13":  Fig13,
	"fig14":  Fig14,
	"fig15":  Fig15,
	"fig16":  Fig16,
	"fig17":  Fig17,
	"fig18":  Fig18,
	"table1": Table1,
	"table2": Table2,

	// Extensions beyond the paper's figures.
	"extevict":   ExtEvictors,
	"extacct":    ExtAccounting,
	"extbackend": ExtBackends,
	"extcluster": ExtCluster,
	"extfault":   ExtFaultTolerance,
	"extrack":    ExtRack,
	"claims":     Claims,
	"colocate":   Colocate,
}

// Names returns all experiment IDs in stable order.
func Names() []string {
	var out []string
	for k := range registry { //magevet:ok keys are sorted below before returning
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the runner for an experiment ID.
func Lookup(name string) (Runner, error) {
	r, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return r, nil
}
