package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"mage/internal/core"
	"mage/internal/stats"
	"mage/internal/workload"
)

// tinySeries wraps sample values into a RunResult at 1 ms spacing.
func tinySeries(vals []float64) core.RunResult {
	s := &stats.TimeSeries{}
	for i, v := range vals {
		s.Add(int64(i)*1e6, v)
	}
	return core.RunResult{Series: s}
}

// tiny returns a scale small enough for unit tests (seconds total).
func tiny() Scale {
	sc := Quick()
	sc.Threads = 16
	sc.RegressionThreads = 4
	sc.Offloads = []float64{0.3, 0.6}
	sc.ThreadSweep = []int{4, 16}
	sc.GapBS = workload.GapBSParams{Scale: 12, EdgeFactor: 16, Iterations: 2, BytesPerVertex: 16, Seed: 42}
	sc.XS = workload.XSBenchParams{Gridpoints: 1 << 12, Nuclides: 16, LookupsPerThread: 400, NuclidesPerLookup: 3}
	sc.Seq = workload.SeqScanParams{Pages: 6 << 10, Iterations: 1, ComputePerPage: 1500}
	sc.Gups = workload.GUPSParams{Pages: 6 << 10, UpdatesPerThread: 1500, PhaseSplit: 0.5,
		HotFrac: 0.8, Theta: 0.99, ComputePerUpdate: 250}
	sc.Metis = workload.MetisParams{InputPages: 3 << 10, IntermediatePages: 2 << 10,
		OutputPages: 512, EmitsPerInputPage: 1, MapCompute: 900, ReduceCompute: 700}
	sc.MC = workload.MemcachedParams{Keys: 1 << 14, ValueBytes: 256, Theta: 0.99,
		GetFraction: 0.998, ComputePerOp: 1500}
	sc.MicroPagesPerThread = 600
	sc.MCLoads = []float64{0.2e6, 0.6e6}
	sc.MCFixedLoad = 0.4e6
	sc.MCDuration = 8 * 1e6 // 8 ms
	return sc
}

func cell(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(tb.Rows[row][col], "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, tb.Rows[row][col], err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
		"table1", "table2"}
	names := Names()
	got := map[string]bool{}
	for _, n := range names {
		got[n] = true
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("experiment %s missing from registry", w)
		}
	}
	if _, err := Lookup("fig99"); err == nil {
		t.Error("Lookup of unknown experiment should fail")
	}
}

func TestTableWriteCSV(t *testing.T) {
	tb := &Table{ID: "x", Header: []string{"a", "b"}}
	tb.AddRow("1", "two, with comma")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"two, with comma\"\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestTablePrintAligned(t *testing.T) {
	tb := &Table{ID: "x", Title: "t", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.Notes = append(tb.Notes, "n")
	var buf bytes.Buffer
	tb.Print(&buf)
	out := buf.String()
	for _, want := range []string{"== x: t ==", "a", "bb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig1ShapeIdealLeadsHermitTrails(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tests are slow")
	}
	tb := Fig1(tiny())[0]
	if len(tb.Rows) < 3 {
		t.Fatalf("fig1 rows = %d", len(tb.Rows))
	}
	// Columns: far-mem%, then (j/h, drop) per system in systemNames order.
	// At the deepest offload row, ideal must outperform Hermit, and MAGE
	// variants must beat Hermit.
	last := len(tb.Rows) - 1
	ideal := cell(t, tb, last, 1)
	hermit := cell(t, tb, last, 3)
	magelib := cell(t, tb, last, 7)
	if ideal <= hermit {
		t.Errorf("ideal %v <= hermit %v at max offload", ideal, hermit)
	}
	if magelib <= hermit {
		t.Errorf("magelib %v <= hermit %v at max offload", magelib, hermit)
	}
	// Drops grow with offload for Hermit.
	d1 := cell(t, tb, 1, 4)
	d2 := cell(t, tb, last, 4)
	if d2 <= d1 {
		t.Errorf("hermit drop not growing: %v then %v", d1, d2)
	}
}

func TestFig5ShapeEvictionHurtsAndMageScales(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb := Fig5(tiny())[0]
	// For every row, fault-only >= fault+evict (eviction adds cost).
	for i, r := range tb.Rows {
		fo := cell(t, tb, i, 2)
		fe := cell(t, tb, i, 3)
		if fe > fo*1.15 {
			t.Errorf("row %v: fault+evict %v exceeds fault-only %v", r, fe, fo)
		}
	}
	// At the top thread count MageLib fault-only beats Hermit.
	n := len(tb.Rows)
	hermitFO := cell(t, tb, n-4, 2)
	mageFO := cell(t, tb, n-2, 2)
	if mageFO <= hermitFO {
		t.Errorf("MageLib (%v) should beat Hermit (%v) at max threads", mageFO, hermitFO)
	}
}

func TestFig7ShootdownLatencyGrowsWithThreads(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb := Fig7(tiny())[0]
	// Hermit rows: 0 and 2 (threads 4 and 16).
	lo := cell(t, tb, 0, 2)
	hi := cell(t, tb, 2, 2)
	if hi <= lo {
		t.Errorf("shootdown latency did not grow: %v -> %v", lo, hi)
	}
}

func TestFig14MageNeverSyncEvicts(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb := Fig14(tiny())[0]
	for _, r := range tb.Rows {
		if strings.HasPrefix(r[0], "Mage") && r[3] != "0" {
			t.Errorf("%s performed %s sync evictions", r[0], r[3])
		}
	}
	// Hermit must sync evict at 30% local.
	if tb.Rows[0][3] == "0" {
		t.Error("Hermit performed no sync evictions at 30% local")
	}
}

func TestFig17PipeliningHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// At tiny scale local memory clamps eviction batches to a few pages,
	// flattening the pipelining advantage into noise; assert a loose
	// bound and leave the real 1.58x claim to the Quick-scale run
	// recorded in results/quick.txt.
	tb := Fig17(tiny())[0] // GapBS panel
	for i := range tb.Rows {
		base := cell(t, tb, i, 1)
		pip := cell(t, tb, i, 2)
		if pip < 0.7*base {
			t.Errorf("row %d: pipelined %v far below baseline %v", i, pip, base)
		}
	}
}

func TestFig18BatchSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tabs := Fig18(tiny())
	if len(tabs) != 2 {
		t.Fatalf("fig18 tables = %d", len(tabs))
	}
	a := tabs[0]
	if len(a.Rows) != 5 {
		t.Fatalf("batch sweep rows = %d", len(a.Rows))
	}
	// At the tiny test scale local memory clamps every batch to a few
	// pages, so the batch-size axis is flat and pipelined-vs-sequential
	// is within noise; assert only a loose bound here. The real claim
	// (pipelined@128-256 beats the best non-pipelined configuration) is
	// checked at Quick scale in results/quick.txt (fig18a).
	best := 0.0
	for i := range a.Rows {
		if v := cell(t, a, i, 2); v > best {
			best = v
		}
	}
	pip256 := cell(t, a, 3, 1)
	if pip256 < 0.6*best {
		t.Errorf("pipelined@256 (%v) far below best non-pipelined (%v)", pip256, best)
	}
}

func TestFig13LatencyGrowsWithOffloadAndLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tabs := Fig13(tiny())
	a, b := tabs[0], tabs[1]
	// Panel a: every row has a positive p99 (growth-vs-offload is too
	// noisy at 8 ms tiny-scale runs to assert; the Quick-scale run in
	// results/quick.txt carries that check).
	for i := range a.Rows {
		if cell(t, a, i, 2) <= 0 {
			t.Errorf("row %d: non-positive p99", i)
		}
	}
	// Panel b: p99 grows with load for every system.
	rowsPerLoad := 4
	for sysIdx := 0; sysIdx < rowsPerLoad; sysIdx++ {
		lo := cell(t, b, sysIdx, 2)
		hi := cell(t, b, len(b.Rows)-rowsPerLoad+sysIdx, 2)
		if hi < lo*0.8 {
			t.Errorf("%s p99 fell with load: %v -> %v", b.Rows[sysIdx][1], lo, hi)
		}
	}
}

func TestTable2AllLocalRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb := Table2(tiny())[0]
	if len(tb.Rows) != 5 {
		t.Fatalf("table2 rows = %d, want 5 workloads", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		if r[1] == "0.0" {
			t.Errorf("%s: Hermit jobs/h is zero", r[0])
		}
	}
}

func TestTable1Complete(t *testing.T) {
	tb := Table1(Scale{})[0]
	if len(tb.Rows) != 6 {
		t.Fatalf("table1 rows = %d", len(tb.Rows))
	}
}

func TestLocalPagesFor(t *testing.T) {
	if got := localPagesFor(1000, 0.5); got != 500 {
		t.Errorf("localPagesFor(1000, 0.5) = %d", got)
	}
	if got := localPagesFor(1000, 0); got <= 1000 {
		t.Errorf("offload 0 needs headroom: %d", got)
	}
	if got := localPagesFor(100, 0.99); got < 64 {
		t.Errorf("floor violated: %d", got)
	}
}

func TestTimelineStats(t *testing.T) {
	// Synthetic series: steady 100, dip to 5, recover to 90.
	tb := tinySeries([]float64{100, 100, 100, 100, 5, 5, 40, 90, 90, 90, 90, 90})
	pre, minPost, rec, stall := timelineStats(tb)
	if pre < 99 || pre > 101 {
		t.Errorf("pre = %v", pre)
	}
	if minPost != 5 {
		t.Errorf("minPost = %v", minPost)
	}
	if rec < 50 {
		t.Errorf("recovered = %v", rec)
	}
	if stall <= 0 {
		t.Errorf("stall = %v", stall)
	}
}
