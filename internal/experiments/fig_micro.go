package experiments

import (
	"fmt"

	"mage/internal/core"
	"mage/internal/nic"
	"mage/internal/sim"
)

// microSystem builds a system for the sequential-read microbenchmark of
// §3.2: each thread reads a private region at page granularity; every
// access is a major fault (pages start remote; no warm-up population).
func microSystem(name string, threads, pagesPerThread int, localFrac float64, mutate func(*core.Config)) (*core.System, []core.AccessStream) {
	total := uint64(threads * pagesPerThread)
	local := int(float64(total) * localFrac)
	if localFrac >= 1 {
		local = int(total) + int(total)/6 + 4096
	}
	cfg, err := core.Preset(name, threads, total, local)
	if err != nil {
		panic(err)
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s := core.MustNewSystem(cfg)
	streams := make([]core.AccessStream, threads)
	for t := 0; t < threads; t++ {
		lo := uint64(t * pagesPerThread)
		i := 0
		streams[t] = core.FuncStream(func() (core.Access, bool) {
			if i >= pagesPerThread {
				return core.Access{}, false
			}
			a := core.Access{Page: lo + uint64(i)}
			i++
			return a, true
		})
	}
	return s, streams
}

// microRun executes the microbenchmark and returns fault throughput in
// M ops/s plus the metrics snapshot.
func microRun(name string, threads, pagesPerThread int, localFrac float64, mutate func(*core.Config)) (float64, core.RunResult) {
	s, streams := microSystem(name, threads, pagesPerThread, localFrac, mutate)
	res := s.Run(streams)
	mops := float64(res.Metrics.MajorFaults) / res.Makespan.Seconds() / 1e6
	return mops, res
}

// threadSysCell is one (thread count, system) grid point.
type threadSysCell struct {
	threads int
	name    string
}

// sweepCells enumerates the (thread count, system) grid in row order.
func sweepCells(threadSweep []int, systems []string) []threadSysCell {
	cells := make([]threadSysCell, 0, len(threadSweep)*len(systems))
	for _, th := range threadSweep {
		for _, name := range systems {
			cells = append(cells, threadSysCell{th, name})
		}
	}
	return cells
}

// Fig5 reproduces Figure 5: fault-in-only vs fault-in-with-eviction
// throughput as thread count grows, against the ideal 5.86 M ops/s link
// limit.
func Fig5(sc Scale) []*Table {
	t := &Table{
		ID:     "fig5",
		Title:  "Seq-read fault throughput: fault-only vs fault+eviction (M ops/s)",
		Header: []string{"threads", "system", "fault-only", "fault+evict"},
	}
	idealLimit := nic.NewDefault(sim.NewEngine(), nic.StackLibOS).MaxPagesPerSecond() / 1e6
	cells := sweepCells(sc.ThreadSweep, []string{"Hermit", "DiLOS", "MageLib", "MageLnx"})
	type point struct{ faultOnly, withEvict float64 }
	results := runCells(sc, len(cells), func(i int) point {
		c := cells[i]
		faultOnly, _ := microRun(c.name, c.threads, sc.MicroPagesPerThread, 1.0, nil)
		withEvict, _ := microRun(c.name, c.threads, sc.MicroPagesPerThread, 0.5, nil)
		return point{faultOnly, withEvict}
	})
	for i, c := range cells {
		t.AddRow(fmt.Sprintf("%d", c.threads), c.name, fmtF(results[i].faultOnly), fmtF(results[i].withEvict))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("ideal link limit: %.2f M ops/s (paper: 5.83)", idealLimit),
		"paper: Hermit and DiLOS saturate around 24-28 threads; eviction costs DiLOS ~half its fault-only throughput")
	return []*Table{t}
}

// breakdownTable renders fault-handler latency breakdowns (Figs 6, 16).
func breakdownTable(id, title string, sc Scale, systems []string) *Table {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"threads", "system", "rdma µs", "tlb µs", "acct µs", "alloc µs", "others µs", "total µs"},
	}
	cells := sweepCells([]int{24, 48}, systems)
	results := runCells(sc, len(cells), func(i int) core.RunResult {
		c := cells[i]
		_, res := microRun(c.name, c.threads, sc.MicroPagesPerThread, 0.5, nil)
		return res
	})
	for i, c := range cells {
		b := results[i].Metrics.BreakdownNs
		total := b[core.CompRDMA] + b[core.CompTLB] + b[core.CompAcct] +
			b[core.CompAlloc] + b[core.CompOthers]
		t.AddRow(fmt.Sprintf("%d", c.threads), c.name,
			fmtF(b[core.CompRDMA]/1e3), fmtF(b[core.CompTLB]/1e3),
			fmtF(b[core.CompAcct]/1e3), fmtF(b[core.CompAlloc]/1e3),
			fmtF(b[core.CompOthers]/1e3), fmtF(total/1e3))
	}
	return t
}

// Fig6 reproduces Figure 6: the Hermit/DiLOS fault-handler breakdown at
// 24 and 48 threads (with active eviction).
func Fig6(sc Scale) []*Table {
	t := breakdownTable("fig6",
		"Fault-handler latency breakdown, Hermit & DiLOS (24/48 threads, 50% offload)",
		sc, []string{"Hermit", "DiLOS"})
	t.Notes = append(t.Notes, "paper: at low thread count RDMA dominates; at 48 threads synchronous-eviction TLB time and contention take over")
	return []*Table{t}
}

// Fig16 reproduces Figure 16: the same breakdown for DiLOS vs the MAGE
// variants, showing accounting and circulation collapsing to sub-µs.
func Fig16(sc Scale) []*Table {
	t := breakdownTable("fig16",
		"Fault-handler latency breakdown, DiLOS vs MAGE variants (24/48 threads)",
		sc, []string{"DiLOS", "MageLib", "MageLnx"})
	t.Notes = append(t.Notes, "paper: partitioning cuts accounting 2.1→0.2µs; the staging allocator cuts circulation 2.4→0.5µs; TLB leaves the fault path entirely")
	return []*Table{t}
}

// Fig7 reproduces Figure 7: average TLB shootdown latency and per-IPI
// delivery latency vs thread count.
func Fig7(sc Scale) []*Table {
	t := &Table{
		ID:     "fig7",
		Title:  "TLB shootdown and IPI delivery latency vs threads (seq read, 50% offload)",
		Header: []string{"threads", "system", "shootdown µs", "ipi µs", "shootdowns", "ipis"},
	}
	cells := sweepCells(sc.ThreadSweep, []string{"Hermit", "DiLOS"})
	results := runCells(sc, len(cells), func(i int) core.RunResult {
		c := cells[i]
		_, res := microRun(c.name, c.threads, sc.MicroPagesPerThread, 0.5, nil)
		return res
	})
	for i, c := range cells {
		m := results[i].Metrics
		t.AddRow(fmt.Sprintf("%d", c.threads), c.name,
			fmtF(m.ShootdownMeanNs/1e3), fmtF(m.IPIDeliveryMeanNs/1e3),
			fmt.Sprintf("%d", m.Shootdowns), fmt.Sprintf("%d", m.IPIsSent))
	}
	t.Notes = append(t.Notes,
		"paper: IPI latency inflates ~33x from 1 to 48 threads (queueing storms); cross-socket latency kinks the curve near 28 threads")
	return []*Table{t}
}

// Fig14 reproduces Figure 14: p99 fault latency and synchronous-eviction
// counts for the 48-thread sequential read at 30% local memory, plus
// achieved RDMA goodput.
func Fig14(sc Scale) []*Table {
	t := &Table{
		ID:     "fig14",
		Title:  "Seq read, 48 threads, 30% local, prefetch off",
		Header: []string{"system", "p99 µs", "mean µs", "sync evicts", "Rx Gbps", "faults"},
	}
	names := []string{"Hermit", "DiLOS", "MageLib", "MageLnx"}
	results := runCells(sc, len(names), func(i int) core.RunResult {
		_, res := microRun(names[i], sc.Threads, sc.MicroPagesPerThread, 0.3, nil)
		return res
	})
	for i, name := range names {
		m := results[i].Metrics
		t.AddRow(name, fmtUs(m.FaultP99Ns), fmtF(m.FaultMeanNs/1e3),
			fmt.Sprintf("%d", m.SyncEvicts), fmtF1(m.RxGbps),
			fmt.Sprintf("%d", m.MajorFaults))
	}
	t.Notes = append(t.Notes,
		"paper: Mage^LIB 181 Gbps (94% of link), Mage^LNX 139 Gbps (kernel stack);"+
			" p99 drops from 255µs (Hermit) / 82µs (DiLOS) to 12µs / 31µs; MAGE has zero synchronous evictions")
	return []*Table{t}
}

// Fig15 reproduces Figure 15: the throughput-latency curve under paced
// load, compared with raw RDMA reads (with 4 background writers).
func Fig15(sc Scale) []*Table {
	t := &Table{
		ID:     "fig15",
		Title:  "Throughput vs p99 latency under paced fault load",
		Header: []string{"offered Mops", "system", "achieved Mops", "p99 µs"},
	}
	loads := []float64{1e6, 2e6, 3e6, 4e6, 5e6}
	type cell struct {
		load float64
		name string // "RawRDMA" selects the bare-NIC comparison run
	}
	var cells []cell
	for _, load := range loads {
		for _, name := range []string{"Hermit", "DiLOS", "MageLib", "MageLnx", "RawRDMA"} {
			cells = append(cells, cell{load, name})
		}
	}
	type point struct {
		ach float64
		p99 int64
	}
	results := runCells(sc, len(cells), func(i int) point {
		c := cells[i]
		if c.name == "RawRDMA" {
			ach, p99 := rawRDMARun(sc, c.load)
			return point{ach, p99}
		}
		ach, p99 := pacedFaultRun(c.name, sc, c.load)
		return point{ach, p99}
	})
	for i, c := range cells {
		t.AddRow(fmtF(c.load/1e6), c.name, fmtF(results[i].ach/1e6), fmtUs(results[i].p99))
	}
	t.Notes = append(t.Notes,
		"paper: Mage^LIB holds a flat tail across loads (allocation never stalls; FP back-pressures the NIC); raw RDMA spikes at saturation")
	return []*Table{t}
}

// pacedFaultRun drives the system with an aggregate offered fault load
// (ops/s) spread across the thread count, open-loop per thread.
func pacedFaultRun(name string, sc Scale, load float64) (achievedOps float64, p99 int64) {
	threads := sc.Threads
	pages := sc.MicroPagesPerThread
	s, _ := microSystem(name, threads, pages, 0.5, nil)
	perThread := load / float64(threads)
	interNs := sim.Time(1e9 / perThread)
	streams := make([]core.AccessStream, threads)
	for tid := 0; tid < threads; tid++ {
		lo := uint64(tid * pages)
		i := 0
		var next sim.Time
		streams[tid] = core.FuncStream(func() (core.Access, bool) {
			if i >= pages {
				return core.Access{}, false
			}
			a := core.Access{
				Page: lo + uint64(i),
				Wait: func(p *sim.Proc) {
					if next > p.Now() {
						p.Sleep(next - p.Now())
					}
					next = p.Now() + interNs
				},
			}
			i++
			return a, true
		})
	}
	res := s.Run(streams)
	return float64(res.Metrics.MajorFaults) / res.Makespan.Seconds(), res.Metrics.FaultP99Ns
}

// rawRDMARun measures bare NIC reads at the offered load with 4
// background writer threads, as the paper's RDMA-only comparison does.
func rawRDMARun(sc Scale, load float64) (achievedOps float64, p99 int64) {
	eng := sim.NewEngine()
	n := nic.NewDefault(eng, nic.StackLibOS)
	threads := sc.Threads
	reads := sc.MicroPagesPerThread
	perThread := load / float64(threads)
	interNs := sim.Time(1e9 / perThread)
	stop := false
	for w := 0; w < 4; w++ {
		eng.Spawn(fmt.Sprintf("bg-writer-%d", w), func(p *sim.Proc) {
			for !stop {
				n.PostWrite(p, 64*nic.PageSize).Wait(p)
			}
		})
	}
	remaining := threads
	var makespan sim.Time
	for tid := 0; tid < threads; tid++ {
		eng.Spawn(fmt.Sprintf("reader-%d", tid), func(p *sim.Proc) {
			var next sim.Time
			for i := 0; i < reads; i++ {
				if next > p.Now() {
					p.Sleep(next - p.Now())
				}
				next = p.Now() + interNs
				n.Read(p, nic.PageSize)
			}
			if p.Now() > makespan {
				makespan = p.Now()
			}
			remaining--
			if remaining == 0 {
				stop = true
			}
		})
	}
	eng.Run()
	return float64(n.Reads.Value()) / makespan.Seconds(), n.ReadLatency.P99()
}
