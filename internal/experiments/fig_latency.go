package experiments

import (
	"fmt"

	"mage/internal/core"
	"mage/internal/workload"
)

// mcSystem builds a memcached system at the given local-memory fraction.
// The paper uses 24 threads to stay within one NUMA socket.
func mcSystem(name string, sc Scale, localFrac float64) (*core.System, *workload.Memcached, int) {
	threads := 24
	w := workload.NewMemcached(sc.MC)
	total := w.NumPages()
	local := int(float64(total) * localFrac)
	if localFrac >= 1 {
		local = int(total) + int(total)/6 + 4096
	}
	cfg, err := core.Preset(name, threads, total, local)
	if err != nil {
		panic(err)
	}
	s := core.MustNewSystem(cfg)
	s.Prepopulate(int(total))
	return s, w, threads
}

// Fig13 reproduces Figure 13: memcached p99 latency (a) vs local-memory
// ratio at a fixed load, and (b) vs offered load at 50% local memory.
func Fig13(sc Scale) []*Table {
	a := &Table{
		ID:     "fig13a",
		Title:  fmt.Sprintf("Memcached p99 vs local memory (load %.0f Kops, 24 threads)", sc.MCFixedLoad/1e3),
		Header: []string{"local%", "system", "p99 µs", "mean µs", "achieved Kops"},
	}
	sysNames := []string{"Hermit", "DiLOS", "MageLib", "MageLnx"}
	type cell struct {
		localFrac float64
		load      float64
		name      string
	}
	var aCells []cell
	for _, localFrac := range []float64{0.9, 0.7, 0.5, 0.3} {
		for _, name := range sysNames {
			aCells = append(aCells, cell{localFrac, sc.MCFixedLoad, name})
		}
	}
	runMC := func(c cell) workload.LatencyResult {
		s, w, threads := mcSystem(c.name, sc, c.localFrac)
		return w.RunOpenLoop(s, threads, c.load, sc.MCDuration, sc.Seed)
	}
	aRes := runCells(sc, len(aCells), func(i int) workload.LatencyResult { return runMC(aCells[i]) })
	for i, c := range aCells {
		res := aRes[i]
		a.AddRow(fmtPct(c.localFrac), c.name, fmtUs(res.P99Ns),
			fmtF(res.MeanNs/1e3), fmtF1(res.AchievedOps/1e3))
	}
	a.Notes = append(a.Notes,
		"paper: for a 200µs SLO Mage^LIB offloads 21% more memory than DiLOS and 36% more than Hermit; Mage^LNX reaches ~70-80%")

	b := &Table{
		ID:     "fig13b",
		Title:  "Memcached p99 vs offered load (50% local memory, 24 threads)",
		Header: []string{"load Kops", "system", "p99 µs", "achieved Kops"},
	}
	var bCells []cell
	for _, load := range sc.MCLoads {
		for _, name := range sysNames {
			bCells = append(bCells, cell{0.5, load, name})
		}
	}
	bRes := runCells(sc, len(bCells), func(i int) workload.LatencyResult { return runMC(bCells[i]) })
	for i, c := range bCells {
		b.AddRow(fmtF1(c.load/1e3), c.name, fmtUs(bRes[i].P99Ns), fmtF1(bRes[i].AchievedOps/1e3))
	}
	b.Notes = append(b.Notes,
		"paper: MAGE sustains 0.64 Mops more than Hermit and 0.28 Mops more than DiLOS under a 200µs p99 SLO")
	return []*Table{a, b}
}
