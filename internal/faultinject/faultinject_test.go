package faultinject

import (
	"testing"

	"mage/internal/sim"
)

func TestDeriveSeedStableAndDistinct(t *testing.T) {
	a := DeriveSeed(7, "extfault", "MageLib", "0.01")
	b := DeriveSeed(7, "extfault", "MageLib", "0.01")
	if a != b {
		t.Fatalf("DeriveSeed not stable: %d vs %d", a, b)
	}
	seen := map[int64]string{}
	cases := [][]string{
		{"extfault", "MageLib", "0.01"},
		{"extfault", "MageLib", "0.02"},
		{"extfault", "Hermit", "0.01"},
		{"extfault", "MageLib0.01"}, // separator must keep this distinct
		{"ext", "faultMageLib", "0.01"},
	}
	for _, parts := range cases {
		s := DeriveSeed(7, parts...)
		if prev, dup := seen[s]; dup {
			t.Errorf("seed collision between %v and %s", parts, prev)
		}
		seen[s] = parts[0] + "|" + parts[1]
	}
	if DeriveSeed(7, "x") == DeriveSeed(8, "x") {
		t.Error("master seed ignored")
	}
}

func TestOutcomeStreamDeterministic(t *testing.T) {
	plan := Plan{
		Seed:          DeriveSeed(1, "det"),
		ReadFailProb:  0.2,
		WriteFailProb: 0.1,
		SpikeProb:     0.3,
		SpikeMin:      100,
		SpikeMax:      5000,
		Outages:       []Window{{Start: 10_000, End: 20_000}},
		Degraded:      []Window{{Start: 40_000, End: 50_000}},
		DegradeFactor: 0.25,
	}
	a := MustNew(plan)
	b := MustNew(plan)
	for i := 0; i < 2000; i++ {
		at := sim.Time(i * 37)
		oa, ob := a.ReadOutcome(at), b.ReadOutcome(at)
		if oa != ob {
			t.Fatalf("read outcome %d diverged: %+v vs %+v", i, oa, ob)
		}
		wa, wb := a.WriteOutcome(at), b.WriteOutcome(at)
		if wa != wb {
			t.Fatalf("write outcome %d diverged: %+v vs %+v", i, wa, wb)
		}
	}
	if a.ReadNacks.Value() == 0 || a.Spikes.Value() == 0 {
		t.Errorf("fault classes never fired: nacks=%d spikes=%d", a.ReadNacks.Value(), a.Spikes.Value())
	}
}

func TestOutageWindows(t *testing.T) {
	in := MustNew(Plan{Outages: PeriodicOutages(1000, 10_000, 2000, 3)})
	cases := []struct {
		at   sim.Time
		down bool
		rec  sim.Time
	}{
		{0, false, 0},
		{1000, true, 3000},
		{2999, true, 3000},
		{3000, false, 3000},
		{11_500, true, 13_000},
		{21_500, true, 23_000},
		{31_500, false, 31_500},
	}
	for _, c := range cases {
		if got := in.Down(c.at); got != c.down {
			t.Errorf("Down(%v) = %v, want %v", c.at, got, c.down)
		}
		if got := in.NextRecovery(c.at); got != c.rec {
			t.Errorf("NextRecovery(%v) = %v, want %v", c.at, got, c.rec)
		}
	}
	if in.ReadOutcome(1500).Drop != DropTimeout {
		t.Error("op during outage did not time out")
	}
	if in.ReadTimeouts.Value() != 1 {
		t.Errorf("timeout counter = %d, want 1", in.ReadTimeouts.Value())
	}
}

func TestDegradedWindowRate(t *testing.T) {
	in := MustNew(Plan{
		Degraded:      []Window{{Start: 100, End: 200}},
		DegradeFactor: 0.5,
	})
	if o := in.ReadOutcome(150); o.RateFactor != 0.5 || o.Drop != DropNone {
		t.Errorf("in-window outcome = %+v", o)
	}
	if o := in.ReadOutcome(250); o.RateFactor != 1 {
		t.Errorf("out-of-window rate factor = %v, want 1", o.RateFactor)
	}
}

func TestZeroPlanIsTransparent(t *testing.T) {
	var pl *Plan
	if pl.Enabled() {
		t.Error("nil plan reports enabled")
	}
	in := MustNew(Plan{Seed: 3})
	for i := 0; i < 100; i++ {
		o := in.ReadOutcome(sim.Time(i))
		if o.Drop != DropNone || o.ExtraLatency != 0 || o.RateFactor != 1 {
			t.Fatalf("zero plan injected something: %+v", o)
		}
	}
}

func TestNewRejectsBadPlans(t *testing.T) {
	bad := []Plan{
		{ReadFailProb: -0.1},
		{WriteFailProb: 1.5},
		{SpikeProb: 0.5, SpikeMin: 100, SpikeMax: 50},
		{Degraded: []Window{{Start: 0, End: 10}}, DegradeFactor: 0},
		{Degraded: []Window{{Start: 0, End: 10}}, DegradeFactor: 2},
	}
	for i, pl := range bad {
		if _, err := New(pl); err == nil {
			t.Errorf("plan %d accepted: %+v", i, pl)
		}
	}
}

func TestOverlappingWindowsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("overlapping outage windows accepted")
		}
	}()
	MustNew(Plan{Outages: []Window{{Start: 0, End: 100}, {Start: 50, End: 150}}})
}

func TestJitterBoundedAndDeterministic(t *testing.T) {
	a := MustNew(Plan{Seed: 11})
	b := MustNew(Plan{Seed: 11})
	for i := 0; i < 1000; i++ {
		ja := a.Jitter(1000, 0.25)
		if jb := b.Jitter(1000, 0.25); ja != jb {
			t.Fatalf("jitter diverged at %d: %v vs %v", i, ja, jb)
		}
		if ja < 750 || ja > 1250 {
			t.Fatalf("jitter %v outside ±25%% of 1000", ja)
		}
	}
	if got := a.Jitter(0, 0.25); got != 0 {
		t.Errorf("Jitter(0) = %v", got)
	}
	if got := a.Jitter(500, 0); got != 500 {
		t.Errorf("Jitter(frac=0) = %v, want 500", got)
	}
}

func TestPeriodicOutages(t *testing.T) {
	if w := PeriodicOutages(0, 0, 10, 3); w != nil {
		t.Error("invalid period accepted")
	}
	// down > period clamps so windows stay disjoint.
	ws := PeriodicOutages(0, 100, 500, 3)
	MustNew(Plan{Outages: ws}) // must not panic
	if len(ws) != 3 || ws[1].Start != 100 || ws[1].End != 200 {
		t.Errorf("clamped windows = %+v", ws)
	}
}
