// Package faultinject is the deterministic, virtual-time fault-schedule
// subsystem: it decides — purely from a seeded schedule, never from the
// host — when a simulated far-memory operation fails, stalls, or runs
// over a degraded link, and when the remote memory node is down
// altogether.
//
// The paper's argument is that far-memory performance is governed by how
// the system behaves under stress, not just on the happy path; this
// package supplies the stress. Four fault classes are modeled, matching
// what a real RDMA fabric and memory node can do to a paging system:
//
//   - per-op failures: a READ/WRITE completes with an error (NACK) after
//     one wire round trip — a CQE error on a healthy link;
//   - latency spikes: an op completes but takes an extra, bounded delay —
//     PFC pauses, congestion bursts, remote CPU hiccups;
//   - link-rate degradation: during scheduled windows the line rate is
//     multiplied by a factor < 1 — a flapping link renegotiating speed;
//   - outages: during scheduled windows the memory node is unreachable,
//     so every op times out with no response at all — the crash/recovery
//     cycle the memnode client mirrors in the real world.
//
// Determinism follows the same cell-key discipline as internal/parexp:
// an Injector's seed derives from the experiment's master seed plus the
// grid cell's identity (DeriveSeed), each cell owns one Injector bound to
// its private engine, and every random draw happens in virtual-time event
// order. Fault-injected grids therefore render byte-identical at any
// worker count, exactly like fault-free ones.
package faultinject

import (
	"fmt"
	"math/rand"
	"sort"

	"mage/internal/sim"
	"mage/internal/stats"
)

// Window is one half-open [Start, End) interval of virtual time.
type Window struct {
	Start, End sim.Time
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t sim.Time) bool { return t >= w.Start && t < w.End }

// Plan is a complete fault schedule for one simulated run. The zero Plan
// injects nothing; every knob defaults to the happy path.
type Plan struct {
	// Seed is the injector's RNG seed. Derive it with DeriveSeed from the
	// experiment's master seed and the grid cell's identity so that the
	// schedule is a pure function of the cell, never of host scheduling.
	Seed int64

	// ReadFailProb / WriteFailProb are per-op probabilities of a NACK:
	// the op fails after one base-latency round trip.
	ReadFailProb  float64
	WriteFailProb float64

	// SpikeProb is the per-op probability of a latency spike drawn
	// uniformly from [SpikeMin, SpikeMax].
	SpikeProb          float64
	SpikeMin, SpikeMax sim.Time

	// Outages are the windows during which the memory node is down: every
	// op times out with no response. Windows must be disjoint; New sorts
	// them by start time.
	Outages []Window

	// Degraded are the windows during which the link runs at
	// DegradeFactor × line rate (0 < DegradeFactor ≤ 1). Windows must be
	// disjoint; New sorts them.
	Degraded      []Window
	DegradeFactor float64
}

// Enabled reports whether the plan can inject anything at all.
func (pl *Plan) Enabled() bool {
	if pl == nil {
		return false
	}
	return pl.ReadFailProb > 0 || pl.WriteFailProb > 0 || pl.SpikeProb > 0 ||
		len(pl.Outages) > 0 || len(pl.Degraded) > 0
}

// DeriveSeed maps (master seed, cell identity) to an injector seed with
// an FNV-1a fold over the parts. The same discipline as parexp cell
// seeding: two distinct cells get unrelated streams, and the result never
// depends on worker identity or completion order.
func DeriveSeed(master int64, parts ...string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		mix(byte(uint64(master) >> (8 * i)))
	}
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			mix(p[i])
		}
		mix(0xff) // part separator so ("ab","c") != ("a","bc")
	}
	return int64(h)
}

// PeriodicOutages builds count outage windows of length down, one per
// period, starting at start. It is the schedule shape the fault-tolerance
// sweep uses: a memory node that crashes on a fixed cadence and recovers
// after a fixed repair time.
func PeriodicOutages(start, period, down sim.Time, count int) []Window {
	if period <= 0 || down <= 0 || count <= 0 {
		return nil
	}
	if down > period {
		down = period
	}
	out := make([]Window, 0, count)
	for i := 0; i < count; i++ {
		s := start + sim.Time(i)*period
		out = append(out, Window{Start: s, End: s + down})
	}
	return out
}

// DropKind classifies how an injected failure presents to the caller.
type DropKind int

const (
	// DropNone: the op completes (possibly slowly).
	DropNone DropKind = iota
	// DropNack: the op fails with an error response after one
	// base-latency round trip.
	DropNack
	// DropTimeout: the op gets no response at all; the caller burns its
	// full per-op timeout before declaring it dead.
	DropTimeout
)

// Outcome is the injector's verdict for one operation.
type Outcome struct {
	Drop DropKind
	// ExtraLatency is added on top of the base latency (spikes).
	ExtraLatency sim.Time
	// RateFactor multiplies the line rate for this op's serialization
	// (1.0 nominal, < 1 during degraded windows).
	RateFactor float64
}

// Injector evaluates a Plan over one engine's virtual time. It is
// simulation-side state: single-threaded by the DES contract, one per
// system, never shared across host goroutines.
type Injector struct {
	plan Plan
	rng  *rand.Rand

	// Injection tallies, for observability.
	ReadNacks     stats.Counter
	WriteNacks    stats.Counter
	ReadTimeouts  stats.Counter
	WriteTimeouts stats.Counter
	Spikes        stats.Counter
}

// New validates the plan and builds an injector with its seeded RNG.
func New(plan Plan) (*Injector, error) {
	if plan.ReadFailProb < 0 || plan.ReadFailProb > 1 ||
		plan.WriteFailProb < 0 || plan.WriteFailProb > 1 ||
		plan.SpikeProb < 0 || plan.SpikeProb > 1 {
		return nil, fmt.Errorf("faultinject: probabilities must be in [0,1]")
	}
	if plan.SpikeProb > 0 && (plan.SpikeMin < 0 || plan.SpikeMax < plan.SpikeMin) {
		return nil, fmt.Errorf("faultinject: spike range [%v,%v] invalid", plan.SpikeMin, plan.SpikeMax)
	}
	if len(plan.Degraded) > 0 && (plan.DegradeFactor <= 0 || plan.DegradeFactor > 1) {
		return nil, fmt.Errorf("faultinject: DegradeFactor %v must be in (0,1]", plan.DegradeFactor)
	}
	plan.Outages = sortedWindows(plan.Outages, "Outages")
	plan.Degraded = sortedWindows(plan.Degraded, "Degraded")
	return &Injector{
		plan: plan,
		rng:  rand.New(rand.NewSource(plan.Seed)),
	}, nil
}

// MustNew is New that panics on an invalid plan.
func MustNew(plan Plan) *Injector {
	in, err := New(plan)
	if err != nil {
		panic(err)
	}
	return in
}

// sortedWindows copies, sorts, and validates a disjoint window list.
func sortedWindows(ws []Window, what string) []Window {
	out := make([]Window, len(ws))
	copy(out, ws)
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	for i, w := range out {
		if w.End <= w.Start {
			panic(fmt.Sprintf("faultinject: %s[%d] empty window [%v,%v)", what, i, w.Start, w.End))
		}
		if i > 0 && w.Start < out[i-1].End {
			panic(fmt.Sprintf("faultinject: %s windows overlap at %v", what, w.Start))
		}
	}
	return out
}

// Plan returns the validated plan the injector runs.
func (in *Injector) Plan() Plan { return in.plan }

// windowAt finds the window containing t in a sorted disjoint list.
func windowAt(ws []Window, t sim.Time) (Window, bool) {
	i := sort.Search(len(ws), func(i int) bool { return ws[i].End > t })
	if i < len(ws) && ws[i].Contains(t) {
		return ws[i], true
	}
	return Window{}, false
}

// Down reports whether the memory node is inside an outage window at t.
func (in *Injector) Down(t sim.Time) bool {
	_, ok := windowAt(in.plan.Outages, t)
	return ok
}

// NextRecovery returns the end of the outage window containing t, or t
// itself when the node is up: the instant a degraded-mode waiter should
// re-probe the remote side.
func (in *Injector) NextRecovery(t sim.Time) sim.Time {
	if w, ok := windowAt(in.plan.Outages, t); ok {
		return w.End
	}
	return t
}

// outcome draws one op verdict. Probability gates are checked before any
// RNG draw so a zero-probability plan consumes no randomness for that
// fault class — the stream stays comparable across plans that differ only
// in disabled knobs.
func (in *Injector) outcome(t sim.Time, failProb float64, nacks, timeouts *stats.Counter) Outcome {
	if in.Down(t) {
		timeouts.Inc()
		return Outcome{Drop: DropTimeout}
	}
	if failProb > 0 && in.rng.Float64() < failProb {
		nacks.Inc()
		return Outcome{Drop: DropNack}
	}
	o := Outcome{RateFactor: 1}
	if in.plan.SpikeProb > 0 && in.rng.Float64() < in.plan.SpikeProb {
		span := int64(in.plan.SpikeMax - in.plan.SpikeMin)
		o.ExtraLatency = in.plan.SpikeMin
		if span > 0 {
			o.ExtraLatency += sim.Time(in.rng.Int63n(span + 1))
		}
		in.Spikes.Inc()
	}
	if _, ok := windowAt(in.plan.Degraded, t); ok {
		o.RateFactor = in.plan.DegradeFactor
	}
	return o
}

// ReadOutcome decides the fate of one remote read issued at t.
func (in *Injector) ReadOutcome(t sim.Time) Outcome {
	return in.outcome(t, in.plan.ReadFailProb, &in.ReadNacks, &in.ReadTimeouts)
}

// WriteOutcome decides the fate of one remote write issued at t.
func (in *Injector) WriteOutcome(t sim.Time) Outcome {
	return in.outcome(t, in.plan.WriteFailProb, &in.WriteNacks, &in.WriteTimeouts)
}

// Jitter spreads d by ±frac deterministically: the retry/backoff layer
// uses it so concurrent retriers don't synchronize into thundering herds,
// without ever touching host randomness.
func (in *Injector) Jitter(d sim.Time, frac float64) sim.Time {
	if d <= 0 || frac <= 0 {
		return d
	}
	span := float64(d) * frac
	j := sim.Time((in.rng.Float64()*2 - 1) * span)
	out := d + j
	if out < 1 {
		out = 1
	}
	return out
}
