package lru

import (
	"mage/internal/sim"
	"mage/internal/topo"
)

// TwoList is the classic Linux active/inactive page-list design (the
// ancestor of multi-gen LRU the paper's §4.2.2 discusses): newly faulted
// pages enter the inactive list; pages that survive an eviction attempt
// (referenced since deactivation) are promoted to the active list; when
// the inactive list runs low, the oldest active pages are demoted back.
// One lock guards both lists — the "centralized final level" whose
// contention the paper measures.
type TwoList struct {
	mu       *sim.Mutex
	inactive fifo
	active   fifo
	costs    Costs

	// Promotions and Demotions count list crossings.
	Promotions uint64
	Demotions  uint64

	trk tracker
}

// NewTwoList returns the active/inactive design.
func NewTwoList(eng *sim.Engine, costs Costs) *TwoList {
	return &TwoList{mu: sim.NewMutex(eng, "lru.twolist"), costs: costs}
}

// Name implements Accounting.
func (tl *TwoList) Name() string { return "two-list" }

// Len implements Accounting.
func (tl *TwoList) Len() int { return tl.inactive.len() + tl.active.len() }

// LockWaitNs implements Accounting.
func (tl *TwoList) LockWaitNs() int64 { return tl.mu.WaitNs }

// Insert implements Accounting: faulted-in pages start inactive.
func (tl *TwoList) Insert(p *sim.Proc, _ topo.CoreID, page uint64) {
	tl.mu.Lock(p)
	p.Sleep(tl.costs.InsertHold)
	tl.inactive.push(page)
	tl.trk.insert(page)
	tl.mu.Unlock(p)
}

// InsertRaw implements Accounting.
func (tl *TwoList) InsertRaw(_ topo.CoreID, page uint64) {
	tl.inactive.push(page)
	tl.trk.insert(page)
}

// Requeue implements Accounting: a second-chance survivor was referenced
// since deactivation — promote it to the active list.
func (tl *TwoList) Requeue(p *sim.Proc, _ topo.CoreID, page uint64) {
	tl.mu.Lock(p)
	p.Sleep(tl.costs.InsertHold)
	tl.active.push(page)
	tl.trk.insert(page)
	tl.Promotions++
	tl.mu.Unlock(p)
}

// IsolateBatch implements Accounting: victims come from the inactive
// list; when it drains below the request, the oldest active pages are
// demoted to refill it (shrink_active_list).
func (tl *TwoList) IsolateBatch(p *sim.Proc, _ int, max int) []uint64 {
	tl.mu.Lock(p)
	p.Sleep(tl.costs.IsolateHold)
	// Demote to keep the inactive list at least as large as the request
	// (Linux aims for an inactive/active balance; the request is the
	// relevant lower bound here).
	for tl.inactive.len() < max {
		pg, ok := tl.active.pop()
		if !ok {
			break
		}
		tl.inactive.push(pg)
		tl.Demotions++
		p.Sleep(tl.costs.ScanPerPage)
	}
	var out []uint64
	for len(out) < max {
		pg, ok := tl.inactive.pop()
		if !ok {
			break
		}
		tl.trk.isolate(pg)
		out = append(out, pg)
	}
	p.Sleep(sim.Time(len(out)) * tl.costs.ScanPerPage)
	tl.trk.checkLen(tl.Name(), tl.Len())
	tl.mu.Unlock(p)
	return out
}
