package lru

import (
	"mage/internal/invariant"
	"mage/internal/sim"
	"mage/internal/topo"
)

// S3FIFO is the S3-FIFO replacement policy (Yang et al., SOSP'23) adapted
// to page-table constraints, provided as an extension: the paper (§4.2.2)
// notes that S3-FIFO's fine-grained frequency tracking is incompatible
// with the coarse accessed bits page tables offer, so MAGE chose
// partitioned LRU instead. This adaptation substitutes the accessed bit
// for the frequency counter: a page that survives an eviction attempt
// (second chance) counts as "frequency > 0" and is promoted to the main
// queue; evicted pages are remembered in a ghost ring so that quickly
// refaulted pages skip the small queue on re-entry.
//
// Like the Global design it uses one lock — it exists to quantify the
// replacement-accuracy-vs-contention trade-off, not to win scalability.
type S3FIFO struct {
	mu    *sim.Mutex
	small fifo
	main  fifo
	costs Costs

	ghost     map[uint64]struct{}
	ghostFIFO fifo
	ghostCap  int

	// origin tracks which queue an isolated page came from, so Requeue
	// can promote small-queue survivors.
	origin map[uint64]bool // true = came from small

	// Promotions counts small→main moves; GhostHits counts re-inserts
	// that skipped the small queue.
	Promotions uint64
	GhostHits  uint64

	trk tracker
}

// NewS3FIFO builds the design; ghostCap bounds the ghost ring (typically
// the size of the small queue's target share of memory).
func NewS3FIFO(eng *sim.Engine, ghostCap int, costs Costs) *S3FIFO {
	if ghostCap < 1 {
		ghostCap = 1
	}
	return &S3FIFO{
		mu:       sim.NewMutex(eng, "lru.s3fifo"),
		costs:    costs,
		ghost:    make(map[uint64]struct{}),
		ghostCap: ghostCap,
		origin:   make(map[uint64]bool),
	}
}

// Name implements Accounting.
func (s *S3FIFO) Name() string { return "s3fifo" }

// Len implements Accounting.
func (s *S3FIFO) Len() int { return s.small.len() + s.main.len() }

// LockWaitNs implements Accounting.
func (s *S3FIFO) LockWaitNs() int64 { return s.mu.WaitNs }

// Insert implements Accounting: ghost hits go straight to the main queue.
func (s *S3FIFO) Insert(p *sim.Proc, core topo.CoreID, page uint64) {
	s.mu.Lock(p)
	p.Sleep(s.costs.InsertHold)
	s.insertLocked(page)
	s.mu.Unlock(p)
}

// InsertRaw implements Accounting.
func (s *S3FIFO) InsertRaw(_ topo.CoreID, page uint64) { s.insertLocked(page) }

func (s *S3FIFO) insertLocked(page uint64) {
	s.trk.insert(page)
	if _, hit := s.ghost[page]; hit {
		delete(s.ghost, page)
		s.main.push(page)
		s.GhostHits++
		return
	}
	s.small.push(page)
}

// Requeue implements Accounting: a page that survived an eviction attempt
// is promoted to (or stays in) the main queue.
func (s *S3FIFO) Requeue(p *sim.Proc, _ topo.CoreID, page uint64) {
	s.mu.Lock(p)
	p.Sleep(s.costs.InsertHold)
	if s.origin[page] {
		s.Promotions++
	}
	delete(s.origin, page)
	s.main.push(page)
	s.trk.insert(page)
	s.mu.Unlock(p)
}

// IsolateBatch implements Accounting: candidates come from the small
// queue first (quick demotion), falling back to the main queue.
func (s *S3FIFO) IsolateBatch(p *sim.Proc, _ int, max int) []uint64 {
	s.mu.Lock(p)
	p.Sleep(s.costs.IsolateHold)
	var out []uint64
	for len(out) < max {
		if pg, ok := s.small.pop(); ok {
			s.origin[pg] = true
			s.trk.isolate(pg)
			out = append(out, pg)
			continue
		}
		pg, ok := s.main.pop()
		if !ok {
			break
		}
		s.origin[pg] = false
		s.trk.isolate(pg)
		out = append(out, pg)
	}
	p.Sleep(sim.Time(len(out)) * s.costs.ScanPerPage)
	s.trk.checkLen(s.Name(), s.Len())
	s.mu.Unlock(p)
	return out
}

// OnEvicted records a completed eviction in the ghost ring. The core
// eviction path calls this for accounting designs that implement it.
func (s *S3FIFO) OnEvicted(page uint64) {
	delete(s.origin, page)
	// The ghost FIFO may hold stale entries (removed by ghost hits);
	// keep popping until the live set is within capacity.
	for len(s.ghost) >= s.ghostCap {
		old, ok := s.ghostFIFO.pop()
		if !ok {
			break
		}
		delete(s.ghost, old)
	}
	s.ghost[page] = struct{}{}
	s.ghostFIFO.push(page)
	if invariant.Enabled {
		invariant.Assert(len(s.ghost) <= s.ghostCap,
			"s3fifo: ghost ring holds %d entries, cap %d", len(s.ghost), s.ghostCap)
	}
}

// GhostTracker is implemented by accounting designs that want to observe
// completed evictions (the core eviction path feeds it).
type GhostTracker interface {
	OnEvicted(page uint64)
}
