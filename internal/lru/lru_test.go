package lru

import (
	"fmt"
	"math/rand"
	"testing"

	"mage/internal/sim"
	"mage/internal/topo"
)

func designs(eng *sim.Engine) []Accounting {
	m := topo.NewMachine(2, 4)
	return []Accounting{
		NewGlobal(eng, DefaultCosts()),
		NewPartitioned(eng, 4, DefaultCosts()),
		NewPerCPUFIFO(eng, m, 4, DefaultCosts()),
	}
}

func TestInsertIsolateRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	for _, a := range designs(eng) {
		a := a
		eng.Spawn("t-"+a.Name(), func(p *sim.Proc) {
			for pg := uint64(0); pg < 100; pg++ {
				a.Insert(p, topo.CoreID(pg%8), pg)
			}
			if a.Len() != 100 {
				t.Errorf("%s: Len = %d, want 100", a.Name(), a.Len())
			}
			seen := map[uint64]bool{}
			total := 0
			for e := 0; e < 4; e++ {
				for {
					batch := a.IsolateBatch(p, e, 16)
					if len(batch) == 0 {
						break
					}
					for _, pg := range batch {
						if seen[pg] {
							t.Errorf("%s: page %d isolated twice", a.Name(), pg)
						}
						seen[pg] = true
						total++
					}
				}
			}
			if total != 100 {
				t.Errorf("%s: isolated %d pages, want 100", a.Name(), total)
			}
			if a.Len() != 0 {
				t.Errorf("%s: Len = %d after draining", a.Name(), a.Len())
			}
		})
	}
	eng.Run()
}

func TestGlobalFIFOOrder(t *testing.T) {
	eng := sim.NewEngine()
	g := NewGlobal(eng, DefaultCosts())
	eng.Spawn("t", func(p *sim.Proc) {
		for pg := uint64(0); pg < 10; pg++ {
			g.Insert(p, 0, pg)
		}
		batch := g.IsolateBatch(p, 0, 5)
		for i, pg := range batch {
			if pg != uint64(i) {
				t.Errorf("batch[%d] = %d, want %d (FIFO)", i, pg, i)
			}
		}
	})
	eng.Run()
}

func TestRequeueGoesToTail(t *testing.T) {
	eng := sim.NewEngine()
	g := NewGlobal(eng, DefaultCosts())
	eng.Spawn("t", func(p *sim.Proc) {
		g.Insert(p, 0, 1)
		g.Insert(p, 0, 2)
		b := g.IsolateBatch(p, 0, 1) // page 1
		g.Requeue(p, 0, b[0])
		rest := g.IsolateBatch(p, 0, 10)
		if len(rest) != 2 || rest[0] != 2 || rest[1] != 1 {
			t.Errorf("after requeue: %v, want [2 1]", rest)
		}
	})
	eng.Run()
}

func TestPartitionedInsertHashesByCore(t *testing.T) {
	eng := sim.NewEngine()
	pt := NewPartitioned(eng, 4, DefaultCosts())
	eng.Spawn("t", func(p *sim.Proc) {
		// Core 1 and core 5 hash to the same of the 4 lists.
		pt.Insert(p, 1, 100)
		pt.Insert(p, 5, 101)
		pt.Insert(p, 2, 102)
		if pt.qs[1].len() != 2 {
			t.Errorf("list 1 has %d pages, want 2", pt.qs[1].len())
		}
		if pt.qs[2].len() != 1 {
			t.Errorf("list 2 has %d pages, want 1", pt.qs[2].len())
		}
	})
	eng.Run()
}

func TestPartitionedEvictorsStartStaggered(t *testing.T) {
	eng := sim.NewEngine()
	pt := NewPartitioned(eng, 4, DefaultCosts())
	eng.Spawn("t", func(p *sim.Proc) {
		// One page per list (cores 0..3 map to lists 0..3).
		for c := 0; c < 4; c++ {
			pt.Insert(p, topo.CoreID(c), uint64(c))
		}
		// Evictor e starts at list e.
		for e := 0; e < 4; e++ {
			b := pt.IsolateBatch(p, e, 1)
			if len(b) != 1 || b[0] != uint64(e) {
				t.Errorf("evictor %d isolated %v, want [%d]", e, b, e)
			}
		}
	})
	eng.Run()
}

func TestPartitionedSkipsEmptyLists(t *testing.T) {
	eng := sim.NewEngine()
	pt := NewPartitioned(eng, 4, DefaultCosts())
	eng.Spawn("t", func(p *sim.Proc) {
		pt.Insert(p, 3, 42) // only list 3 non-empty
		b := pt.IsolateBatch(p, 0, 8)
		if len(b) != 1 || b[0] != 42 {
			t.Errorf("isolate = %v, want [42]", b)
		}
	})
	eng.Run()
}

func TestNoPageLostOrDuplicatedProperty(t *testing.T) {
	// Random interleavings of insert/isolate/requeue across all designs:
	// every inserted page is eventually isolated exactly once.
	for trial := 0; trial < 5; trial++ {
		eng := sim.NewEngine()
		for _, a := range designs(eng) {
			a := a
			trial := trial
			eng.Spawn("t-"+a.Name(), func(p *sim.Proc) {
				rng := rand.New(rand.NewSource(int64(trial)))
				inserted := map[uint64]bool{}
				finalized := map[uint64]bool{}
				var held []uint64
				next := uint64(0)
				for op := 0; op < 1000; op++ {
					switch rng.Intn(4) {
					case 0, 1:
						a.Insert(p, topo.CoreID(rng.Intn(8)), next)
						inserted[next] = true
						next++
					case 2:
						held = append(held, a.IsolateBatch(p, rng.Intn(4), 8)...)
					case 3:
						for _, pg := range held {
							if rng.Intn(3) == 0 {
								a.Requeue(p, topo.CoreID(rng.Intn(8)), pg)
							} else {
								if finalized[pg] {
									t.Errorf("%s: page %d finalized twice", a.Name(), pg)
								}
								finalized[pg] = true
							}
						}
						held = held[:0]
					}
				}
				// Drain everything.
				for e := 0; e < 4; e++ {
					for {
						b := a.IsolateBatch(p, e, 64)
						if len(b) == 0 {
							break
						}
						for _, pg := range b {
							if finalized[pg] {
								t.Errorf("%s: page %d isolated after finalize", a.Name(), pg)
							}
							finalized[pg] = true
						}
					}
				}
				for _, pg := range held {
					finalized[pg] = true
				}
				if len(finalized) != len(inserted) {
					t.Errorf("%s: inserted %d pages, finalized %d",
						a.Name(), len(inserted), len(finalized))
				}
			})
		}
		eng.Run()
	}
}

func TestPartitionedLessContendedThanGlobal(t *testing.T) {
	run := func(mk func(*sim.Engine) Accounting) int64 {
		eng := sim.NewEngine()
		a := mk(eng)
		// 32 inserters + 4 evictors hammering the structure.
		for i := 0; i < 32; i++ {
			i := i
			eng.Spawn(fmt.Sprintf("ins%d", i), func(p *sim.Proc) {
				for k := 0; k < 200; k++ {
					a.Insert(p, topo.CoreID(i%8), uint64(i*1000+k))
					p.Sleep(50)
				}
			})
		}
		for e := 0; e < 4; e++ {
			e := e
			eng.Spawn(fmt.Sprintf("ev%d", e), func(p *sim.Proc) {
				for k := 0; k < 100; k++ {
					a.IsolateBatch(p, e, 16)
					p.Sleep(200)
				}
			})
		}
		eng.Run()
		return a.LockWaitNs()
	}
	global := run(func(e *sim.Engine) Accounting { return NewGlobal(e, DefaultCosts()) })
	part := run(func(e *sim.Engine) Accounting { return NewPartitioned(e, 4, DefaultCosts()) })
	if part >= global {
		t.Errorf("partitioned wait (%d) should be below global wait (%d)", part, global)
	}
}

func TestFIFOQueueCompaction(t *testing.T) {
	var q fifo
	for i := uint64(0); i < 20000; i++ {
		q.push(i)
		if got, ok := q.pop(); !ok || got != i {
			t.Fatalf("pop = %d,%v, want %d", got, ok, i)
		}
	}
	if len(q.buf) > 8192 {
		t.Errorf("fifo buffer grew to %d; compaction failed", len(q.buf))
	}
}
