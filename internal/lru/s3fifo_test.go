package lru

import (
	"math/rand"
	"testing"

	"mage/internal/sim"
)

func newS3(t *testing.T) (*sim.Engine, *S3FIFO) {
	t.Helper()
	eng := sim.NewEngine()
	return eng, NewS3FIFO(eng, 8, DefaultCosts())
}

func TestS3FIFONewInsertsGoToSmallQueue(t *testing.T) {
	eng, s := newS3(t)
	eng.Spawn("t", func(p *sim.Proc) {
		s.Insert(p, 0, 1)
		s.Insert(p, 0, 2)
		if s.small.len() != 2 || s.main.len() != 0 {
			t.Errorf("small=%d main=%d, want 2/0", s.small.len(), s.main.len())
		}
		// Isolation drains the small queue first, FIFO order.
		b := s.IsolateBatch(p, 0, 10)
		if len(b) != 2 || b[0] != 1 || b[1] != 2 {
			t.Errorf("isolate = %v", b)
		}
	})
	eng.Run()
}

func TestS3FIFOGhostHitPromotesToMain(t *testing.T) {
	eng, s := newS3(t)
	eng.Spawn("t", func(p *sim.Proc) {
		s.Insert(p, 0, 7)
		b := s.IsolateBatch(p, 0, 1)
		if len(b) != 1 || b[0] != 7 {
			t.Fatalf("isolate = %v", b)
		}
		s.OnEvicted(7) // page leaves; remembered in ghost ring
		s.Insert(p, 0, 7)
		if s.main.len() != 1 || s.small.len() != 0 {
			t.Errorf("ghost hit should insert to main: small=%d main=%d",
				s.small.len(), s.main.len())
		}
		if s.GhostHits != 1 {
			t.Errorf("GhostHits = %d", s.GhostHits)
		}
	})
	eng.Run()
}

func TestS3FIFORequeuePromotes(t *testing.T) {
	eng, s := newS3(t)
	eng.Spawn("t", func(p *sim.Proc) {
		s.Insert(p, 0, 3)
		s.IsolateBatch(p, 0, 1)
		// Second chance: the eviction path found the accessed bit set.
		s.Requeue(p, 0, 3)
		if s.main.len() != 1 {
			t.Errorf("requeued page not in main queue")
		}
		if s.Promotions != 1 {
			t.Errorf("Promotions = %d", s.Promotions)
		}
	})
	eng.Run()
}

func TestS3FIFOGhostCapacityBounded(t *testing.T) {
	eng, s := newS3(t)
	eng.Spawn("t", func(p *sim.Proc) {
		for pg := uint64(0); pg < 100; pg++ {
			s.Insert(p, 0, pg)
		}
		for {
			b := s.IsolateBatch(p, 0, 16)
			if len(b) == 0 {
				break
			}
			for _, pg := range b {
				s.OnEvicted(pg)
			}
		}
		if len(s.ghost) > 8 {
			t.Errorf("ghost holds %d pages, cap 8", len(s.ghost))
		}
	})
	eng.Run()
}

func TestS3FIFOIsolationFallsBackToMain(t *testing.T) {
	eng, s := newS3(t)
	eng.Spawn("t", func(p *sim.Proc) {
		s.Insert(p, 0, 1)
		s.IsolateBatch(p, 0, 1)
		s.Requeue(p, 0, 1) // now in main; small empty
		b := s.IsolateBatch(p, 0, 4)
		if len(b) != 1 || b[0] != 1 {
			t.Errorf("main fallback isolate = %v", b)
		}
	})
	eng.Run()
}

func TestS3FIFONoPageLostProperty(t *testing.T) {
	eng, s := newS3(t)
	eng.Spawn("t", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(11))
		resident := map[uint64]bool{}
		next := uint64(0)
		for op := 0; op < 3000; op++ {
			switch rng.Intn(3) {
			case 0:
				s.Insert(p, 0, next)
				resident[next] = true
				next++
			case 1:
				for _, pg := range s.IsolateBatch(p, rng.Intn(4), 4) {
					if !resident[pg] {
						t.Fatalf("isolated non-resident page %d", pg)
					}
					if rng.Intn(3) == 0 {
						s.Requeue(p, 0, pg)
					} else {
						delete(resident, pg)
						s.OnEvicted(pg)
					}
				}
			case 2:
				if got := s.Len(); got != len(resident) {
					t.Fatalf("Len=%d, tracked=%d", got, len(resident))
				}
			}
		}
		// Drain: every resident page must come out exactly once.
		for {
			b := s.IsolateBatch(p, 0, 64)
			if len(b) == 0 {
				break
			}
			for _, pg := range b {
				if !resident[pg] {
					t.Fatalf("drained unexpected page %d", pg)
				}
				delete(resident, pg)
			}
		}
		if len(resident) != 0 {
			t.Errorf("%d pages lost", len(resident))
		}
	})
	eng.Run()
}
