package lru

import (
	"math/rand"
	"testing"

	"mage/internal/sim"
)

func TestTwoListInsertGoesInactive(t *testing.T) {
	eng := sim.NewEngine()
	tl := NewTwoList(eng, DefaultCosts())
	eng.Spawn("t", func(p *sim.Proc) {
		tl.Insert(p, 0, 1)
		tl.Insert(p, 0, 2)
		if tl.inactive.len() != 2 || tl.active.len() != 0 {
			t.Errorf("inactive=%d active=%d", tl.inactive.len(), tl.active.len())
		}
		b := tl.IsolateBatch(p, 0, 2)
		if len(b) != 2 || b[0] != 1 {
			t.Errorf("isolate = %v", b)
		}
	})
	eng.Run()
}

func TestTwoListRequeuePromotes(t *testing.T) {
	eng := sim.NewEngine()
	tl := NewTwoList(eng, DefaultCosts())
	eng.Spawn("t", func(p *sim.Proc) {
		tl.Insert(p, 0, 7)
		tl.IsolateBatch(p, 0, 1)
		tl.Requeue(p, 0, 7)
		if tl.active.len() != 1 {
			t.Error("requeued page not in active list")
		}
		if tl.Promotions != 1 {
			t.Errorf("Promotions = %d", tl.Promotions)
		}
		// Isolation demotes it back when inactive runs dry.
		b := tl.IsolateBatch(p, 0, 1)
		if len(b) != 1 || b[0] != 7 {
			t.Errorf("demotion-refill isolate = %v", b)
		}
		if tl.Demotions != 1 {
			t.Errorf("Demotions = %d", tl.Demotions)
		}
	})
	eng.Run()
}

func TestTwoListNoPageLostProperty(t *testing.T) {
	eng := sim.NewEngine()
	tl := NewTwoList(eng, DefaultCosts())
	eng.Spawn("t", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(17))
		resident := map[uint64]bool{}
		next := uint64(0)
		for op := 0; op < 3000; op++ {
			switch rng.Intn(3) {
			case 0:
				tl.Insert(p, 0, next)
				resident[next] = true
				next++
			case 1:
				for _, pg := range tl.IsolateBatch(p, 0, 4) {
					if !resident[pg] {
						t.Fatalf("isolated unknown page %d", pg)
					}
					if rng.Intn(3) == 0 {
						tl.Requeue(p, 0, pg)
					} else {
						delete(resident, pg)
					}
				}
			case 2:
				if tl.Len() != len(resident) {
					t.Fatalf("Len=%d tracked=%d", tl.Len(), len(resident))
				}
			}
		}
		for {
			b := tl.IsolateBatch(p, 0, 64)
			if len(b) == 0 {
				break
			}
			for _, pg := range b {
				if !resident[pg] {
					t.Fatalf("drained unknown page %d", pg)
				}
				delete(resident, pg)
			}
		}
		if len(resident) != 0 {
			t.Errorf("%d pages lost", len(resident))
		}
	})
	eng.Run()
}
