// Package lru implements the page-accounting designs (FP₃/EP₁) the paper
// compares: the data structure that tracks resident pages and supplies
// eviction candidates.
//
//   - Global: one system-wide list behind one lock — the Linux/OSv design
//     whose contention grows 9.6–11.4× with thread count (§3.3.2).
//   - Partitioned: MAGE's per-evictor independent lists; inserts hash by
//     CPU, evictors scan lists round-robin from staggered start indices
//     (§4.2.2). Trades global recency accuracy for scalability.
//   - PerCPUFIFO: Mage^LNX's low-contention FIFO queues, one per CPU
//     (§5.1). No recency ordering at all.
//
// The structures store page numbers only; the second-chance (accessed-bit)
// check happens in the eviction path against the PTE, and rejected pages
// come back through Requeue.
//
// Invariant (tested): a resident page is in exactly one list or held by
// exactly one isolating evictor; never duplicated, never lost.
package lru

import (
	"mage/internal/invariant"
	"mage/internal/sim"
	"mage/internal/topo"
)

// Accounting tracks resident pages and yields eviction candidates.
type Accounting interface {
	// Insert records a page that just became resident (or was reactivated)
	// on behalf of core.
	Insert(p *sim.Proc, core topo.CoreID, page uint64)
	// InsertRaw is Insert with no simulated cost; used only for zero-time
	// warm-start population before a run begins.
	InsertRaw(core topo.CoreID, page uint64)
	// Requeue returns a page that survived an eviction attempt (second
	// chance) to the accounting structure.
	Requeue(p *sim.Proc, core topo.CoreID, page uint64)
	// IsolateBatch removes up to max eviction candidates for the evictor
	// with the given index. Returned pages belong to the caller until
	// evicted or Requeued.
	IsolateBatch(p *sim.Proc, evictor int, max int) []uint64
	// Len returns the number of tracked pages.
	Len() int
	// Name identifies the design.
	Name() string
	// LockWaitNs returns cumulative lock wait across the structure.
	LockWaitNs() int64
}

// Costs parameterizes list operations.
type Costs struct {
	// InsertHold is the critical-section time of one insert.
	InsertHold sim.Time
	// ScanPerPage is the cost per candidate examined during isolation.
	ScanPerPage sim.Time
	// IsolateHold is the fixed critical-section time of one batch isolate.
	IsolateHold sim.Time
}

// DefaultCosts reflects Linux-like list manipulation costs.
func DefaultCosts() Costs {
	return Costs{InsertHold: 90, ScanPerPage: 45, IsolateHold: 150}
}

// tracker is a magecheck-only membership set enforcing the package
// invariant: a tracked page lives in exactly one list (or is held by the
// evictor that isolated it) — never duplicated, never lost. Without the
// magecheck build tag every method is a gated no-op.
type tracker struct {
	in map[uint64]struct{}
}

// insert records a page entering the design's lists.
func (t *tracker) insert(page uint64) {
	if !invariant.Enabled {
		return
	}
	if t.in == nil {
		t.in = make(map[uint64]struct{})
	}
	_, dup := t.in[page]
	invariant.Assert(!dup, "lru: page %d tracked twice", page)
	t.in[page] = struct{}{}
}

// isolate records a page leaving the lists for an evictor.
func (t *tracker) isolate(page uint64) {
	if !invariant.Enabled {
		return
	}
	_, ok := t.in[page]
	invariant.Assert(ok, "lru: isolated page %d was never tracked", page)
	delete(t.in, page)
}

// checkLen asserts the design's reported size against the tracked set.
func (t *tracker) checkLen(name string, length int) {
	if !invariant.Enabled {
		return
	}
	invariant.Assert(length == len(t.in),
		"lru: %s reports %d pages but tracker holds %d", name, length, len(t.in))
}

// fifo is an amortized O(1) queue of page numbers.
type fifo struct {
	buf  []uint64
	head int
}

func (q *fifo) len() int { return len(q.buf) - q.head }

func (q *fifo) push(pg uint64) { q.buf = append(q.buf, pg) }

func (q *fifo) pop() (uint64, bool) {
	if q.head >= len(q.buf) {
		return 0, false
	}
	pg := q.buf[q.head]
	q.head++
	if q.head > 4096 && q.head*2 > len(q.buf) {
		q.buf = append(q.buf[:0], q.buf[q.head:]...)
		q.head = 0
	}
	return pg, true
}

// Global is the single-list, single-lock design.
type Global struct {
	mu    *sim.Mutex
	q     fifo
	costs Costs
	trk   tracker
}

// NewGlobal returns the global-list design.
func NewGlobal(eng *sim.Engine, costs Costs) *Global {
	return &Global{mu: sim.NewMutex(eng, "lru.global"), costs: costs}
}

func (g *Global) Name() string      { return "global-lru" }
func (g *Global) Len() int          { return g.q.len() }
func (g *Global) LockWaitNs() int64 { return g.mu.WaitNs }

func (g *Global) Insert(p *sim.Proc, _ topo.CoreID, page uint64) {
	g.mu.Lock(p)
	p.Sleep(g.costs.InsertHold)
	g.q.push(page)
	g.trk.insert(page)
	g.mu.Unlock(p)
}

func (g *Global) Requeue(p *sim.Proc, core topo.CoreID, page uint64) {
	g.Insert(p, core, page)
}

// InsertRaw implements Accounting.
func (g *Global) InsertRaw(_ topo.CoreID, page uint64) {
	g.q.push(page)
	g.trk.insert(page)
}

func (g *Global) IsolateBatch(p *sim.Proc, _ int, max int) []uint64 {
	g.mu.Lock(p)
	p.Sleep(g.costs.IsolateHold)
	var out []uint64
	for len(out) < max {
		pg, ok := g.q.pop()
		if !ok {
			break
		}
		g.trk.isolate(pg)
		out = append(out, pg)
	}
	p.Sleep(sim.Time(len(out)) * g.costs.ScanPerPage)
	g.trk.checkLen(g.Name(), g.Len())
	g.mu.Unlock(p)
	return out
}

// Partitioned is MAGE's per-evictor-list design.
type Partitioned struct {
	mus    []*sim.Mutex
	qs     []fifo
	costs  Costs
	cursor []int // per-evictor round-robin scan position
	reqRR  int   // round-robin target for requeued (reactivated) pages
	trk    tracker
}

// NewPartitioned returns lists independent lists served by up to lists
// evictors.
func NewPartitioned(eng *sim.Engine, lists int, costs Costs) *Partitioned {
	if lists < 1 {
		lists = 1
	}
	pt := &Partitioned{costs: costs, cursor: make([]int, lists)}
	for i := 0; i < lists; i++ {
		pt.mus = append(pt.mus, sim.NewMutex(eng, "lru.part"))
		pt.qs = append(pt.qs, fifo{})
		// Stagger each evictor's starting list to balance load (§4.2.2).
		pt.cursor[i] = i
	}
	return pt
}

func (pt *Partitioned) Name() string { return "partitioned-lru" }

func (pt *Partitioned) Len() int {
	n := 0
	for i := range pt.qs {
		n += pt.qs[i].len()
	}
	return n
}

func (pt *Partitioned) LockWaitNs() int64 {
	var t int64
	for _, m := range pt.mus {
		t += m.WaitNs
	}
	return t
}

// listFor hashes the inserting CPU to a list (CPU-ID modulo list count).
func (pt *Partitioned) listFor(core topo.CoreID) int {
	return int(core) % len(pt.qs)
}

func (pt *Partitioned) Insert(p *sim.Proc, core topo.CoreID, page uint64) {
	i := pt.listFor(core)
	pt.mus[i].Lock(p)
	p.Sleep(pt.costs.InsertHold)
	pt.qs[i].push(page)
	pt.trk.insert(page)
	pt.mus[i].Unlock(p)
}

// Requeue distributes reactivated pages round-robin over the partitions
// rather than hashing by the evictor's CPU: second-chance survivors are
// hot, and spreading them restores the full aggregate list length of
// protection before the next scan reaches them.
func (pt *Partitioned) Requeue(p *sim.Proc, _ topo.CoreID, page uint64) {
	i := pt.reqRR % len(pt.qs)
	pt.reqRR++
	pt.mus[i].Lock(p)
	p.Sleep(pt.costs.InsertHold)
	pt.qs[i].push(page)
	pt.trk.insert(page)
	pt.mus[i].Unlock(p)
}

// InsertRaw implements Accounting.
func (pt *Partitioned) InsertRaw(core topo.CoreID, page uint64) {
	pt.qs[pt.listFor(core)].push(page)
	pt.trk.insert(page)
}

// IsolateBatch scans from the evictor's cursor, moving to the next list
// when the current one is empty, wrapping at most once around.
func (pt *Partitioned) IsolateBatch(p *sim.Proc, evictor int, max int) []uint64 {
	if evictor < 0 {
		evictor = 0
	}
	cur := &pt.cursor[evictor%len(pt.cursor)]
	var out []uint64
	for tries := 0; tries < len(pt.qs) && len(out) < max; tries++ {
		i := *cur % len(pt.qs)
		*cur = (*cur + 1) % len(pt.qs)
		if pt.qs[i].len() == 0 {
			continue
		}
		pt.mus[i].Lock(p)
		p.Sleep(pt.costs.IsolateHold)
		taken := 0
		for len(out) < max {
			pg, ok := pt.qs[i].pop()
			if !ok {
				break
			}
			pt.trk.isolate(pg)
			out = append(out, pg)
			taken++
		}
		p.Sleep(sim.Time(taken) * pt.costs.ScanPerPage)
		pt.mus[i].Unlock(p)
	}
	pt.trk.checkLen(pt.Name(), pt.Len())
	return out
}

// PerCPUFIFO is Mage^LNX's design: one FIFO per CPU, evictors drain them
// round-robin.
type PerCPUFIFO struct {
	mus    []*sim.Mutex
	qs     []fifo
	costs  Costs
	cursor []int
	trk    tracker
}

// NewPerCPUFIFO returns one queue per core, scanned by up to evictors
// evictor threads.
func NewPerCPUFIFO(eng *sim.Engine, machine *topo.Machine, evictors int, costs Costs) *PerCPUFIFO {
	if evictors < 1 {
		evictors = 1
	}
	f := &PerCPUFIFO{costs: costs, cursor: make([]int, evictors)}
	n := machine.NumCores()
	for i := 0; i < n; i++ {
		f.mus = append(f.mus, sim.NewMutex(eng, "lru.fifo"))
		f.qs = append(f.qs, fifo{})
	}
	for e := range f.cursor {
		f.cursor[e] = (e * n) / evictors
	}
	return f
}

func (f *PerCPUFIFO) Name() string { return "per-cpu-fifo" }

func (f *PerCPUFIFO) Len() int {
	n := 0
	for i := range f.qs {
		n += f.qs[i].len()
	}
	return n
}

func (f *PerCPUFIFO) LockWaitNs() int64 {
	var t int64
	for _, m := range f.mus {
		t += m.WaitNs
	}
	return t
}

func (f *PerCPUFIFO) Insert(p *sim.Proc, core topo.CoreID, page uint64) {
	i := int(core) % len(f.qs)
	f.mus[i].Lock(p)
	p.Sleep(f.costs.InsertHold)
	f.qs[i].push(page)
	f.trk.insert(page)
	f.mus[i].Unlock(p)
}

func (f *PerCPUFIFO) Requeue(p *sim.Proc, core topo.CoreID, page uint64) {
	f.Insert(p, core, page)
}

// InsertRaw implements Accounting.
func (f *PerCPUFIFO) InsertRaw(core topo.CoreID, page uint64) {
	f.qs[int(core)%len(f.qs)].push(page)
	f.trk.insert(page)
}

func (f *PerCPUFIFO) IsolateBatch(p *sim.Proc, evictor int, max int) []uint64 {
	cur := &f.cursor[evictor%len(f.cursor)]
	var out []uint64
	for tries := 0; tries < len(f.qs) && len(out) < max; tries++ {
		i := *cur % len(f.qs)
		*cur = (*cur + 1) % len(f.qs)
		if f.qs[i].len() == 0 {
			continue
		}
		f.mus[i].Lock(p)
		p.Sleep(f.costs.IsolateHold)
		taken := 0
		for len(out) < max {
			pg, ok := f.qs[i].pop()
			if !ok {
				break
			}
			f.trk.isolate(pg)
			out = append(out, pg)
			taken++
		}
		p.Sleep(sim.Time(taken) * f.costs.ScanPerPage)
		f.mus[i].Unlock(p)
	}
	f.trk.checkLen(f.Name(), f.Len())
	return out
}
