package palloc

import (
	"fmt"
	"testing"

	"mage/internal/buddy"
	"mage/internal/sim"
	"mage/internal/topo"
)

func sources(eng *sim.Engine, m *topo.Machine, frames int) []Source {
	c := DefaultCosts()
	return []Source{
		NewGlobalLock(eng, frames, c),
		NewPerCPUCache(eng, m, frames, 32, c),
		NewMultiLayer(eng, m, frames, 32, c),
	}
}

func TestAllDesignsAllocateEveryFrameExactlyOnce(t *testing.T) {
	for _, mk := range []func(*sim.Engine, *topo.Machine) Source{
		func(e *sim.Engine, m *topo.Machine) Source { return NewGlobalLock(e, 256, DefaultCosts()) },
		func(e *sim.Engine, m *topo.Machine) Source { return NewPerCPUCache(e, m, 256, 16, DefaultCosts()) },
		func(e *sim.Engine, m *topo.Machine) Source { return NewMultiLayer(e, m, 256, 16, DefaultCosts()) },
	} {
		eng := sim.NewEngine()
		m := topo.NewMachine(1, 4)
		src := mk(eng, m)
		eng.Spawn("driver", func(p *sim.Proc) {
			seen := make(map[buddy.Frame]bool)
			n := 0
			for {
				f, ok := src.Alloc(p, 0)
				if !ok {
					break
				}
				if seen[f] {
					t.Errorf("%s: frame %d returned twice", src.Name(), f)
				}
				seen[f] = true
				n++
			}
			if n != 256 {
				t.Errorf("%s: allocated %d frames, want 256", src.Name(), n)
			}
			if src.FreeFrames() != 0 {
				t.Errorf("%s: FreeFrames = %d after exhaustion", src.Name(), src.FreeFrames())
			}
		})
		eng.Run()
	}
}

func TestFreeFramesConservation(t *testing.T) {
	eng := sim.NewEngine()
	m := topo.NewMachine(2, 4)
	for _, src := range sources(eng, m, 512) {
		src := src
		eng.Spawn("driver-"+src.Name(), func(p *sim.Proc) {
			var held []buddy.Frame
			for i := 0; i < 2000; i++ {
				if i%3 != 2 {
					core := topo.CoreID(i % m.NumCores())
					if f, ok := src.Alloc(p, core); ok {
						held = append(held, f)
					}
				} else if len(held) > 0 {
					core := topo.CoreID(i % m.NumCores())
					src.Free(p, core, held[len(held)-1])
					held = held[:len(held)-1]
				}
				if got := src.FreeFrames() + len(held); got != 512 {
					t.Fatalf("%s: conservation broken at op %d: free+held = %d",
						src.Name(), i, got)
				}
			}
		})
	}
	eng.Run()
}

func TestFreeBatchReturnsAllFrames(t *testing.T) {
	eng := sim.NewEngine()
	m := topo.NewMachine(1, 2)
	for _, src := range sources(eng, m, 256) {
		src := src
		eng.Spawn("driver-"+src.Name(), func(p *sim.Proc) {
			var batch []buddy.Frame
			for i := 0; i < 100; i++ {
				f, ok := src.Alloc(p, 0)
				if !ok {
					t.Fatalf("%s: alloc %d failed", src.Name(), i)
				}
				batch = append(batch, f)
			}
			src.FreeBatch(p, 1, batch)
			if got := src.FreeFrames(); got != 256 {
				t.Errorf("%s: FreeFrames = %d after batch free, want 256", src.Name(), got)
			}
		})
	}
	eng.Run()
}

func TestFramesCirculateThroughLayers(t *testing.T) {
	// MultiLayer: frames freed in batches by an "evictor" must become
	// allocatable by an "app" core even when the buddy allocator is empty.
	eng := sim.NewEngine()
	m := topo.NewMachine(1, 4)
	ml := NewMultiLayer(eng, m, 64, 8, DefaultCosts())
	eng.Spawn("driver", func(p *sim.Proc) {
		var all []buddy.Frame
		for {
			f, ok := ml.Alloc(p, 0)
			if !ok {
				break
			}
			all = append(all, f)
		}
		// Evictor reclaims half the frames on core 3.
		ml.FreeBatch(p, 3, all[:32])
		got := 0
		for {
			if _, ok := ml.Alloc(p, 1); !ok {
				break
			}
			got++
		}
		if got != 32 {
			t.Errorf("app core allocated %d recycled frames, want 32", got)
		}
	})
	eng.Run()
}

func TestPerCPUCacheHitAvoidsGlobalLock(t *testing.T) {
	eng := sim.NewEngine()
	m := topo.NewMachine(1, 2)
	c := NewPerCPUCache(eng, m, 256, 32, DefaultCosts())
	eng.Spawn("driver", func(p *sim.Proc) {
		// Refills amortize: far fewer lock acquisitions than allocations.
		const allocs = 100
		for i := 0; i < allocs; i++ {
			c.Alloc(p, 0)
		}
		if c.mu.Acquires*4 > allocs {
			t.Errorf("global lock taken %d times for %d allocs; caching broken",
				c.mu.Acquires, allocs)
		}
	})
	eng.Run()
}

func TestGlobalLockContentionGrowsWithThreads(t *testing.T) {
	run := func(threads int) int64 {
		eng := sim.NewEngine()
		m := topo.NewMachine(2, 28)
		g := NewGlobalLock(eng, 1<<16, DefaultCosts())
		for i := 0; i < threads; i++ {
			i := i
			eng.Spawn(fmt.Sprintf("t%d", i), func(p *sim.Proc) {
				var held []buddy.Frame
				for k := 0; k < 200; k++ {
					if f, ok := g.Alloc(p, topo.CoreID(i%m.NumCores())); ok {
						held = append(held, f)
					}
					if len(held) > 8 {
						g.Free(p, topo.CoreID(i%m.NumCores()), held[0])
						held = held[1:]
					}
				}
			})
		}
		eng.Run()
		return g.LockWaitNs()
	}
	low, high := run(4), run(48)
	if high < 4*low {
		t.Errorf("lock wait at 48 threads (%d) should dwarf 4 threads (%d)", high, low)
	}
}

func TestMultiLayerBeatsGlobalLockUnderContention(t *testing.T) {
	run := func(mk func(*sim.Engine, *topo.Machine) Source) sim.Time {
		eng := sim.NewEngine()
		m := topo.NewMachine(2, 28)
		src := mk(eng, m)
		for i := 0; i < 48; i++ {
			i := i
			eng.Spawn(fmt.Sprintf("t%d", i), func(p *sim.Proc) {
				core := topo.CoreID(i % m.NumCores())
				var held []buddy.Frame
				for k := 0; k < 300; k++ {
					if f, ok := src.Alloc(p, core); ok {
						held = append(held, f)
					}
					if len(held) >= 64 {
						src.FreeBatch(p, core, held)
						held = held[:0]
					}
				}
			})
		}
		return eng.Run()
	}
	tGlobal := run(func(e *sim.Engine, m *topo.Machine) Source {
		return NewGlobalLock(e, 1<<16, DefaultCosts())
	})
	tML := run(func(e *sim.Engine, m *topo.Machine) Source {
		return NewMultiLayer(e, m, 1<<16, 32, DefaultCosts())
	})
	if tML >= tGlobal {
		t.Errorf("multi-layer (%v) should beat global lock (%v) at 48 threads", tML, tGlobal)
	}
}
