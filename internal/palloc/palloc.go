// Package palloc implements the local page-frame circulation layer
// (FP₁/EP₃ in the paper): the component that hands free frames to the
// fault-in path and takes reclaimed frames back from the eviction path.
//
// Three designs are provided, matching the systems compared in the paper:
//
//   - GlobalLock: one buddy allocator behind one lock (DiLOS's "global
//     sleepable mutex", the §3.3.3 bottleneck).
//   - PerCPUCache: Linux-style per-CPU free-page caches refilled in
//     batches from the locked global allocator.
//   - MultiLayer: MAGE's three-level hierarchy (§4.2.3, §5.2) — per-core
//     caches for immediate access, a shared concurrent queue for batch
//     operations, and the global buddy allocator as a fallback. Eviction
//     threads free whole batches to the shared queue; application threads
//     allocate from their core's cache.
//
// All designs satisfy Source and keep an exact global count of circulating
// free frames so the kernel's watermark logic can observe memory pressure.
package palloc

import (
	"mage/internal/buddy"
	"mage/internal/sim"
	"mage/internal/topo"
)

// Source hands out and takes back single page frames.
type Source interface {
	// Alloc returns a free frame, or ok=false if none is available
	// anywhere in the hierarchy.
	Alloc(p *sim.Proc, core topo.CoreID) (buddy.Frame, bool)
	// Free returns a frame to circulation.
	Free(p *sim.Proc, core topo.CoreID, f buddy.Frame)
	// FreeBatch returns many frames at once (the eviction path's reclaim
	// step); implementations may amortize locking.
	FreeBatch(p *sim.Proc, core topo.CoreID, fs []buddy.Frame)
	// FreeFrames returns the exact number of free frames in circulation.
	FreeFrames() int
	// SharedFree returns the free frames reachable by ANY core (global
	// allocator + shared queue), excluding per-core caches. Watermark and
	// eviction-pressure logic must use this: privately cached frames
	// cannot satisfy another core's fault.
	SharedFree() int
	// Name identifies the design for reports.
	Name() string
	// LockWaitNs returns cumulative virtual time spent waiting on the
	// design's shared locks — the contention the paper charges to
	// "mem circulation" in its latency breakdowns.
	LockWaitNs() int64
	// AllocRaw takes a frame with no simulated cost; used only for
	// zero-time warm-start population before a run begins.
	AllocRaw() (buddy.Frame, bool)
}

// Costs parameterizes per-operation CPU time. All in virtual ns.
type Costs struct {
	// GlobalHold is the critical-section length of one alloc/free against
	// the global buddy allocator.
	GlobalHold sim.Time
	// PerFrameTransfer is the added cost per frame when moving batches
	// between layers.
	PerFrameTransfer sim.Time
	// CacheOp is the cost of an uncontended per-CPU cache hit.
	CacheOp sim.Time
	// SharedQueueHold is the critical-section length of a batch operation
	// on MAGE's shared concurrent queue.
	SharedQueueHold sim.Time
}

// DefaultCosts returns costs calibrated against the paper's measurement
// that MAGE's staging allocator cuts per-page circulation time from
// 2.4 µs to 0.5 µs under load (§6.4).
func DefaultCosts() Costs {
	return Costs{
		GlobalHold:       300,
		PerFrameTransfer: 25,
		CacheOp:          80,
		SharedQueueHold:  120,
	}
}

// GlobalLock is a buddy allocator behind a single mutex.
type GlobalLock struct {
	mu    *sim.Mutex
	b     *buddy.Allocator
	costs Costs
}

// NewGlobalLock builds the single-lock design over numFrames frames.
func NewGlobalLock(eng *sim.Engine, numFrames int, costs Costs) *GlobalLock {
	return &GlobalLock{
		mu:    sim.NewMutex(eng, "palloc.global"),
		b:     buddy.New(numFrames),
		costs: costs,
	}
}

func (g *GlobalLock) Name() string      { return "global-lock" }
func (g *GlobalLock) FreeFrames() int   { return g.b.FreeFrames() }
func (g *GlobalLock) SharedFree() int   { return g.b.FreeFrames() }
func (g *GlobalLock) LockWaitNs() int64 { return g.mu.WaitNs }

// AllocRaw implements Source.
func (g *GlobalLock) AllocRaw() (buddy.Frame, bool) { return g.b.AllocPage() }

func (g *GlobalLock) Alloc(p *sim.Proc, _ topo.CoreID) (buddy.Frame, bool) {
	// Fast-fail when no frame exists anywhere: woken fault-path waiters
	// retry in storms, and paying the lock dance per retry melts down.
	if g.b.FreeFrames() == 0 {
		return buddy.NilFrame, false
	}
	g.mu.Lock(p)
	p.Sleep(g.costs.GlobalHold)
	f, ok := g.b.AllocPage()
	g.mu.Unlock(p)
	return f, ok
}

func (g *GlobalLock) Free(p *sim.Proc, _ topo.CoreID, f buddy.Frame) {
	g.mu.Lock(p)
	p.Sleep(g.costs.GlobalHold)
	g.b.FreePage(f)
	g.mu.Unlock(p)
}

func (g *GlobalLock) FreeBatch(p *sim.Proc, core topo.CoreID, fs []buddy.Frame) {
	g.mu.Lock(p)
	p.Sleep(g.costs.GlobalHold + sim.Time(len(fs))*g.costs.PerFrameTransfer)
	for _, f := range fs {
		g.b.FreePage(f)
	}
	g.mu.Unlock(p)
}

// PerCPUCache is the Linux design: per-core caches over a locked global
// buddy allocator.
type PerCPUCache struct {
	mu        *sim.Mutex
	b         *buddy.Allocator
	costs     Costs
	caches    [][]buddy.Frame
	batch     int
	capacity  int
	cachedSum int
}

// NewPerCPUCache builds the Linux-style design. batch frames move per
// refill/flush; each cache holds at most 2*batch, clamped so the caches
// combined can never absorb the whole frame pool (otherwise a tiny
// memory's frames all strand privately and cores without them livelock).
func NewPerCPUCache(eng *sim.Engine, machine *topo.Machine, numFrames, batch int, costs Costs) *PerCPUCache {
	batch, capacity := clampCache(batch, numFrames, machine.NumCores())
	return &PerCPUCache{
		mu:       sim.NewMutex(eng, "palloc.percpu.global"),
		b:        buddy.New(numFrames),
		costs:    costs,
		caches:   make([][]buddy.Frame, machine.NumCores()),
		batch:    batch,
		capacity: capacity,
	}
}

// clampCache sizes per-core cache parameters against the pool: combined
// cache capacity stays under a quarter of all frames.
func clampCache(batch, numFrames, cores int) (int, int) {
	if batch < 1 {
		batch = 1
	}
	capacity := 2 * batch
	if lim := numFrames / (4 * cores); capacity > lim {
		capacity = lim
		if capacity < 1 {
			capacity = 1
		}
		batch = (capacity + 1) / 2
	}
	return batch, capacity
}

func (c *PerCPUCache) Name() string      { return "per-cpu-cache" }
func (c *PerCPUCache) FreeFrames() int   { return c.b.FreeFrames() + c.cachedSum }
func (c *PerCPUCache) SharedFree() int   { return c.b.FreeFrames() }
func (c *PerCPUCache) LockWaitNs() int64 { return c.mu.WaitNs }

// AllocRaw implements Source.
func (c *PerCPUCache) AllocRaw() (buddy.Frame, bool) { return c.b.AllocPage() }

func (c *PerCPUCache) Alloc(p *sim.Proc, core topo.CoreID) (buddy.Frame, bool) {
	cache := &c.caches[core]
	if len(*cache) == 0 && c.b.FreeFrames() == 0 {
		return buddy.NilFrame, false // fast-fail; see GlobalLock.Alloc
	}
	p.Sleep(c.costs.CacheOp)
	if len(*cache) == 0 {
		// Refill a batch from the global allocator; under scarcity take
		// only half of what remains so other cores can still allocate.
		c.mu.Lock(p)
		p.Sleep(c.costs.GlobalHold + sim.Time(c.batch)*c.costs.PerFrameTransfer)
		n := c.batch
		if free := c.b.FreeFrames(); n >= free {
			n = (free + 1) / 2
		}
		for i := 0; i < n; i++ {
			f, ok := c.b.AllocPage()
			if !ok {
				break
			}
			*cache = append(*cache, f)
			c.cachedSum++
		}
		c.mu.Unlock(p)
	}
	if len(*cache) == 0 {
		return buddy.NilFrame, false
	}
	f := (*cache)[len(*cache)-1]
	*cache = (*cache)[:len(*cache)-1]
	c.cachedSum--
	return f, true
}

func (c *PerCPUCache) Free(p *sim.Proc, core topo.CoreID, f buddy.Frame) {
	cache := &c.caches[core]
	p.Sleep(c.costs.CacheOp)
	*cache = append(*cache, f)
	c.cachedSum++
	if len(*cache) > c.capacity {
		c.flush(p, cache)
	}
}

func (c *PerCPUCache) FreeBatch(p *sim.Proc, core topo.CoreID, fs []buddy.Frame) {
	for _, f := range fs {
		c.Free(p, core, f)
	}
}

func (c *PerCPUCache) flush(p *sim.Proc, cache *[]buddy.Frame) {
	n := c.batch
	if n > len(*cache) {
		n = len(*cache)
	}
	c.mu.Lock(p)
	p.Sleep(c.costs.GlobalHold + sim.Time(n)*c.costs.PerFrameTransfer)
	for i := 0; i < n; i++ {
		f := (*cache)[len(*cache)-1]
		*cache = (*cache)[:len(*cache)-1]
		c.b.FreePage(f)
		c.cachedSum--
	}
	c.mu.Unlock(p)
}

// MultiLayer is MAGE's three-level allocator: per-core caches, a shared
// concurrent queue for batch transfers, and the global buddy allocator as
// a fallback (§5.2).
type MultiLayer struct {
	globalMu *sim.Mutex
	queueMu  *sim.Mutex
	b        *buddy.Allocator
	costs    Costs
	caches   [][]buddy.Frame
	queue    []buddy.Frame
	batch    int
	capacity int
	// outside counts frames held in caches + queue (not in buddy).
	outside int
}

// NewMultiLayer builds MAGE's allocator. batch frames move per layer
// transfer; per-core capacity is clamped like NewPerCPUCache's.
func NewMultiLayer(eng *sim.Engine, machine *topo.Machine, numFrames, batch int, costs Costs) *MultiLayer {
	batch, capacity := clampCache(batch, numFrames, machine.NumCores())
	return &MultiLayer{
		globalMu: sim.NewMutex(eng, "palloc.ml.global"),
		queueMu:  sim.NewMutex(eng, "palloc.ml.queue"),
		b:        buddy.New(numFrames),
		costs:    costs,
		caches:   make([][]buddy.Frame, machine.NumCores()),
		batch:    batch,
		capacity: capacity,
	}
}

func (m *MultiLayer) Name() string      { return "multi-layer" }
func (m *MultiLayer) FreeFrames() int   { return m.b.FreeFrames() + m.outside }
func (m *MultiLayer) SharedFree() int   { return m.b.FreeFrames() + len(m.queue) }
func (m *MultiLayer) LockWaitNs() int64 { return m.globalMu.WaitNs + m.queueMu.WaitNs }

// AllocRaw implements Source.
func (m *MultiLayer) AllocRaw() (buddy.Frame, bool) { return m.b.AllocPage() }

func (m *MultiLayer) Alloc(p *sim.Proc, core topo.CoreID) (buddy.Frame, bool) {
	cache := &m.caches[core]
	if len(*cache) == 0 && len(m.queue) == 0 && m.b.FreeFrames() == 0 {
		return buddy.NilFrame, false // fast-fail; see GlobalLock.Alloc
	}
	p.Sleep(m.costs.CacheOp)
	if len(*cache) == 0 {
		m.refill(p, cache)
	}
	if len(*cache) == 0 {
		return buddy.NilFrame, false
	}
	f := (*cache)[len(*cache)-1]
	*cache = (*cache)[:len(*cache)-1]
	m.outside--
	return f, true
}

// refill pulls a batch, preferring the shared queue (cheap) over the
// global buddy allocator (expensive).
func (m *MultiLayer) refill(p *sim.Proc, cache *[]buddy.Frame) {
	m.queueMu.Lock(p)
	p.Sleep(m.costs.SharedQueueHold)
	n := len(m.queue)
	if n > m.batch {
		n = m.batch
	} else if n > 8 {
		// Scarcity: leave half for other cores instead of vacuuming the
		// queue into one private cache. Very short queues are taken whole
		// so refills stay amortized.
		n = (n + 1) / 2
	}
	if n > 0 {
		*cache = append(*cache, m.queue[len(m.queue)-n:]...)
		m.queue = m.queue[:len(m.queue)-n]
	}
	m.queueMu.Unlock(p)
	if n > 0 {
		return
	}
	m.globalMu.Lock(p)
	p.Sleep(m.costs.GlobalHold + sim.Time(m.batch)*m.costs.PerFrameTransfer)
	for i := 0; i < m.batch; i++ {
		f, ok := m.b.AllocPage()
		if !ok {
			break
		}
		*cache = append(*cache, f)
		m.outside++
	}
	m.globalMu.Unlock(p)
}

func (m *MultiLayer) Free(p *sim.Proc, core topo.CoreID, f buddy.Frame) {
	cache := &m.caches[core]
	p.Sleep(m.costs.CacheOp)
	*cache = append(*cache, f)
	m.outside++
	if len(*cache) > m.capacity {
		// Spill a batch to the shared queue, not the global allocator.
		n := m.batch
		m.queueMu.Lock(p)
		p.Sleep(m.costs.SharedQueueHold)
		m.queue = append(m.queue, (*cache)[len(*cache)-n:]...)
		*cache = (*cache)[:len(*cache)-n]
		m.queueMu.Unlock(p)
	}
}

// FreeBatch is the eviction-thread path: the whole batch goes to the
// shared queue in one critical section, bypassing the per-core cache.
func (m *MultiLayer) FreeBatch(p *sim.Proc, core topo.CoreID, fs []buddy.Frame) {
	if len(fs) == 0 {
		return
	}
	m.queueMu.Lock(p)
	p.Sleep(m.costs.SharedQueueHold + sim.Time(len(fs))*m.costs.PerFrameTransfer/8)
	m.queue = append(m.queue, fs...)
	m.outside += len(fs)
	m.queueMu.Unlock(p)
}
