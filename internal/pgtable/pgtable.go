// Package pgtable implements the virtual-memory metadata substrate: page
// table entries with present/accessed/dirty bits, VMAs, and the
// synchronization models the compared systems use around them.
//
// Three lock models reproduce the designs from §3.2 and §5 of the paper:
//
//   - LockGlobal: one lock for the whole address space (the coarse
//     VMA/address-space locking that bottlenecks Hermit on Linux).
//   - LockSharded: fixed page-range shards ("interval-tree-based shards",
//     Mage^LNX §5.1).
//   - LockPerPTE: synchronization embedded in the PTE itself with no
//     shared lock (DiLOS and Mage^LIB's unified page table §5.2).
//
// The PTE state machine doubles as the swap-cache replacement: a page in
// StateFaulting is being fetched by exactly one thread and concurrent
// faulting threads wait on the entry, which deduplicates fault-ins the way
// the unified page table does.
package pgtable

import (
	"fmt"
	"sort"

	"mage/internal/buddy"
	"mage/internal/invariant"
	"mage/internal/sim"
	"mage/internal/stats"
)

// PageState is the lifecycle state of one virtual page.
type PageState uint8

const (
	// StateRemote: the page's content lives on the far-memory node.
	StateRemote PageState = iota
	// StatePresent: mapped to a local frame.
	StatePresent
	// StateFaulting: a fault-in is in flight; waiters queue on the PTE.
	StateFaulting
	// StateEvicting: unmapped by the eviction path; writeback in flight.
	StateEvicting
	// StateZeroFill: never-populated anonymous memory; the first fault
	// allocates a zeroed frame with no remote fetch. Once evicted the
	// page becomes StateRemote like any other.
	StateZeroFill
)

func (s PageState) String() string {
	switch s {
	case StateRemote:
		return "remote"
	case StatePresent:
		return "present"
	case StateFaulting:
		return "faulting"
	case StateEvicting:
		return "evicting"
	case StateZeroFill:
		return "zero-fill"
	}
	return fmt.Sprintf("PageState(%d)", uint8(s))
}

// PTE is one page-table entry.
type PTE struct {
	State    PageState
	Frame    buddy.Frame
	Accessed bool
	Dirty    bool
	waiters  *sim.WaitQueue
}

// LockModel selects the synchronization design.
type LockModel int

const (
	// LockGlobal uses one address-space-wide mutex.
	LockGlobal LockModel = iota
	// LockSharded uses fixed page-range shards.
	LockSharded
	// LockPerPTE embeds synchronization in the entry (no shared mutex).
	LockPerPTE
)

func (m LockModel) String() string {
	switch m {
	case LockGlobal:
		return "global"
	case LockSharded:
		return "sharded"
	case LockPerPTE:
		return "per-pte"
	}
	return fmt.Sprintf("LockModel(%d)", int(m))
}

// Costs parameterizes PTE manipulation. Virtual ns.
type Costs struct {
	// Walk is the software page-table walk on entry to the fault handler.
	Walk sim.Time
	// Update is one PTE read-modify-write.
	Update sim.Time
	// LockHold is the critical-section length under LockGlobal/LockSharded.
	LockHold sim.Time
	// PerPTESync is the cost of the embedded-synchronization fast path.
	PerPTESync sim.Time
}

// DefaultCosts returns costs in line with commodity kernels.
func DefaultCosts() Costs {
	return Costs{Walk: 90, Update: 120, LockHold: 110, PerPTESync: 40}
}

// VMA is a virtual memory area covering pages [Start, End).
type VMA struct {
	Start, End uint64
	Name       string
}

// AddressSpace is one application's page table.
type AddressSpace struct {
	eng      *sim.Engine
	numPages uint64
	ptes     []PTE
	vmas     []VMA
	model    LockModel
	costs    Costs
	global   *sim.Mutex
	shards   []*sim.Mutex
	shardSz  uint64

	resident int

	// Label identifies this address space in invariant and panic
	// messages — multi-tenant nodes set it to the owning tenant's id so a
	// violation names the tenant it occurred in. Empty on standalone use.
	Label string

	// Faults counts BeginFault calls that initiated a fetch.
	Faults stats.Counter
	// DedupWaits counts faults absorbed by an in-flight fetch.
	DedupWaits stats.Counter
}

// New builds an address space of numPages pages with the given lock model.
// shards is the shard count for LockSharded (ignored otherwise; must be
// >= 1).
func New(eng *sim.Engine, numPages uint64, model LockModel, shards int, costs Costs) *AddressSpace {
	if numPages == 0 {
		panic("pgtable: empty address space")
	}
	as := &AddressSpace{
		eng:      eng,
		numPages: numPages,
		ptes:     make([]PTE, numPages),
		model:    model,
		costs:    costs,
	}
	// A remote page owns no frame; the Frame zero value is a valid index,
	// so entries must start at NilFrame explicitly.
	for i := range as.ptes {
		as.ptes[i].Frame = buddy.NilFrame
	}
	switch model {
	case LockGlobal:
		as.global = sim.NewMutex(eng, "as.global")
	case LockSharded:
		if shards < 1 {
			shards = 1
		}
		as.shardSz = (numPages + uint64(shards) - 1) / uint64(shards)
		for i := 0; i < shards; i++ {
			as.shards = append(as.shards, sim.NewMutex(eng, "as.shard"))
		}
	}
	return as
}

// NumPages returns the address-space size in pages.
func (as *AddressSpace) NumPages() uint64 { return as.numPages }

// Resident returns the number of pages currently in StatePresent or
// StateEvicting (they still occupy a local frame).
func (as *AddressSpace) Resident() int { return as.resident }

// Model returns the lock model.
func (as *AddressSpace) Model() LockModel { return as.model }

// LockWaitNs returns the cumulative wait on the address-space locks.
func (as *AddressSpace) LockWaitNs() int64 {
	switch as.model {
	case LockGlobal:
		return as.global.WaitNs
	case LockSharded:
		var t int64
		for _, s := range as.shards {
			t += s.WaitNs
		}
		return t
	}
	return 0
}

// who names this address space in diagnostics: "pgtable" when unlabeled,
// "pgtable[<label>]" otherwise.
func (as *AddressSpace) who() string {
	if as.Label == "" {
		return "pgtable"
	}
	return "pgtable[" + as.Label + "]"
}

// Map registers a VMA. Areas must not overlap.
func (as *AddressSpace) Map(start, end uint64, name string) VMA {
	if start >= end || end > as.numPages {
		panic(fmt.Sprintf("%s: bad VMA [%d,%d) in %d pages", as.who(), start, end, as.numPages))
	}
	for _, v := range as.vmas {
		if start < v.End && v.Start < end {
			panic(fmt.Sprintf("%s: VMA [%d,%d) overlaps %q", as.who(), start, end, v.Name))
		}
	}
	v := VMA{Start: start, End: end, Name: name}
	as.vmas = append(as.vmas, v)
	sort.Slice(as.vmas, func(i, j int) bool { return as.vmas[i].Start < as.vmas[j].Start })
	return v
}

// FindVMA returns the VMA containing page, or ok=false (a segfault in a
// real system).
func (as *AddressSpace) FindVMA(page uint64) (VMA, bool) {
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].End > page })
	if i < len(as.vmas) && as.vmas[i].Start <= page {
		return as.vmas[i], true
	}
	return VMA{}, false
}

// PTEOf returns a read-only copy of the entry (for tests and metrics).
func (as *AddressSpace) PTEOf(page uint64) PTE { return as.ptes[page] }

func (as *AddressSpace) lockOf(page uint64) *sim.Mutex {
	switch as.model {
	case LockGlobal:
		return as.global
	case LockSharded:
		return as.shards[page/as.shardSz]
	}
	return nil
}

// lock acquires the metadata lock covering page and charges the
// model-dependent cost.
func (as *AddressSpace) lock(p *sim.Proc, page uint64) *sim.Mutex {
	mu := as.lockOf(page)
	if mu == nil {
		p.Sleep(as.costs.PerPTESync)
		return nil
	}
	mu.Lock(p)
	p.Sleep(as.costs.LockHold)
	return mu
}

func unlock(p *sim.Proc, mu *sim.Mutex) {
	if mu != nil {
		mu.Unlock(p)
	}
}

// HardwareAccess models the MMU touching a present page: sets the
// accessed (and dirty) bits with no software cost. It reports whether the
// page was present (a TLB/PT hit) — if false the caller must take a fault.
func (as *AddressSpace) HardwareAccess(page uint64, write bool) bool {
	pte := &as.ptes[page]
	if pte.State != StatePresent {
		return false
	}
	pte.Accessed = true
	if write {
		pte.Dirty = true
	}
	return true
}

// FaultDisposition tells the fault handler what to do next.
type FaultDisposition int

const (
	// FaultFetch: the caller owns the fault and must fetch the page, then
	// call CompleteFault.
	FaultFetch FaultDisposition = iota
	// FaultAlreadyPresent: another thread resolved it (or it was never
	// absent); retry the access.
	FaultAlreadyPresent
	// FaultFetchZero: the caller owns the fault but the page is
	// anonymous zero-fill memory — allocate a frame, no remote fetch.
	FaultFetchZero
)

// BeginFault enters the fault handler for page. If another fault for the
// same page is in flight (or the page is mid-eviction), the caller waits —
// the unified-page-table dedup — and receives FaultAlreadyPresent or, if
// the page went remote meanwhile, ownership of a new fetch.
func (as *AddressSpace) BeginFault(p *sim.Proc, page uint64) FaultDisposition {
	p.Sleep(as.costs.Walk)
	for {
		mu := as.lock(p, page)
		pte := &as.ptes[page]
		switch pte.State {
		case StatePresent:
			unlock(p, mu)
			return FaultAlreadyPresent
		case StateRemote:
			pte.State = StateFaulting
			p.Sleep(as.costs.Update)
			if invariant.Enabled {
				as.checkPTE(page)
			}
			unlock(p, mu)
			as.Faults.Inc()
			return FaultFetch
		case StateZeroFill:
			pte.State = StateFaulting
			p.Sleep(as.costs.Update)
			if invariant.Enabled {
				as.checkPTE(page)
			}
			unlock(p, mu)
			as.Faults.Inc()
			return FaultFetchZero
		case StateFaulting, StateEvicting:
			// Wait for the in-flight operation, then re-evaluate.
			if pte.waiters == nil {
				pte.waiters = sim.NewWaitQueue(as.eng, "pte.waiters")
			}
			w := pte.waiters
			unlock(p, mu)
			as.DedupWaits.Inc()
			w.Wait(p)
		}
	}
}

// CompleteFault installs frame for page and wakes deduplicated waiters.
// Only the thread that received FaultFetch may call it.
func (as *AddressSpace) CompleteFault(p *sim.Proc, page uint64, frame buddy.Frame) {
	mu := as.lock(p, page)
	pte := &as.ptes[page]
	if pte.State != StateFaulting {
		panic(fmt.Sprintf("%s: CompleteFault on page %d in state %v", as.who(), page, pte.State))
	}
	pte.State = StatePresent
	pte.Frame = frame
	pte.Accessed = true
	pte.Dirty = false
	p.Sleep(as.costs.Update)
	as.resident++
	if pte.waiters != nil {
		pte.waiters.Broadcast()
		pte.waiters = nil
	}
	if invariant.Enabled {
		as.checkPTE(page)
	}
	unlock(p, mu)
}

// UnmapResult describes TryUnmap's outcome.
type UnmapResult struct {
	OK    bool
	Frame buddy.Frame
	Dirty bool
}

// TryUnmap is the eviction path's unmap step (EP₂ prelude): if page is
// present and its accessed bit is clear, the PTE transitions to
// StateEvicting and the frame is returned. If the accessed bit is set,
// the bit is cleared and the unmap is refused (the CLOCK second chance).
// Pages not present are refused.
func (as *AddressSpace) TryUnmap(p *sim.Proc, page uint64, honorAccessed bool) UnmapResult {
	mu := as.lock(p, page)
	defer unlock(p, mu)
	pte := &as.ptes[page]
	if pte.State != StatePresent {
		return UnmapResult{}
	}
	if honorAccessed && pte.Accessed {
		pte.Accessed = false
		p.Sleep(as.costs.Update)
		return UnmapResult{}
	}
	pte.State = StateEvicting
	p.Sleep(as.costs.Update)
	if invariant.Enabled {
		as.checkPTE(page)
	}
	return UnmapResult{OK: true, Frame: pte.Frame, Dirty: pte.Dirty}
}

// AbortFault abandons a fault that received FaultFetch (e.g. a prefetch
// dropped for lack of free frames): the PTE returns to StateRemote and
// queued waiters are woken to retry (one of them will take over the fetch).
func (as *AddressSpace) AbortFault(p *sim.Proc, page uint64) {
	mu := as.lock(p, page)
	pte := &as.ptes[page]
	if pte.State != StateFaulting {
		panic(fmt.Sprintf("%s: AbortFault on page %d in state %v", as.who(), page, pte.State))
	}
	pte.State = StateRemote
	p.Sleep(as.costs.Update)
	if pte.waiters != nil {
		pte.waiters.Broadcast()
		pte.waiters = nil
	}
	if invariant.Enabled {
		as.checkPTE(page)
	}
	unlock(p, mu)
}

// AbortEvict reverses TryUnmap: the page returns to StatePresent with its
// frame intact (used when remote slot allocation fails mid-eviction).
// Queued faulting threads are woken and will observe the present page.
func (as *AddressSpace) AbortEvict(p *sim.Proc, page uint64) {
	mu := as.lock(p, page)
	pte := &as.ptes[page]
	if pte.State != StateEvicting {
		panic(fmt.Sprintf("%s: AbortEvict on page %d in state %v", as.who(), page, pte.State))
	}
	pte.State = StatePresent
	pte.Accessed = true
	p.Sleep(as.costs.Update)
	if pte.waiters != nil {
		pte.waiters.Broadcast()
		pte.waiters = nil
	}
	if invariant.Enabled {
		as.checkPTE(page)
	}
	unlock(p, mu)
}

// CompleteEvict finishes eviction of an unmapped page: the PTE returns to
// StateRemote and any faulting threads that queued behind the eviction are
// woken to fetch it back.
func (as *AddressSpace) CompleteEvict(p *sim.Proc, page uint64) {
	mu := as.lock(p, page)
	pte := &as.ptes[page]
	if pte.State != StateEvicting {
		panic(fmt.Sprintf("%s: CompleteEvict on page %d in state %v", as.who(), page, pte.State))
	}
	pte.State = StateRemote
	pte.Frame = buddy.NilFrame
	pte.Accessed = false
	pte.Dirty = false
	p.Sleep(as.costs.Update)
	as.resident--
	if pte.waiters != nil {
		pte.waiters.Broadcast()
		pte.waiters = nil
	}
	if invariant.Enabled {
		as.checkPTE(page)
	}
	unlock(p, mu)
}

// InstallRaw makes page resident on frame with no simulated cost; used
// only for zero-time warm-start population before a run begins. The page
// must currently be remote.
func (as *AddressSpace) InstallRaw(page uint64, frame buddy.Frame) {
	pte := &as.ptes[page]
	if pte.State != StateRemote && pte.State != StateZeroFill {
		panic(fmt.Sprintf("%s: InstallRaw on page %d in state %v", as.who(), page, pte.State))
	}
	pte.State = StatePresent
	pte.Frame = frame
	pte.Accessed = true
	as.resident++
	if invariant.Enabled {
		as.checkPTE(page)
	}
}

// MarkZeroFill marks remote pages [start, end) as never-populated
// anonymous memory (init-time, no simulated cost).
func (as *AddressSpace) MarkZeroFill(start, end uint64) {
	for pg := start; pg < end && pg < as.numPages; pg++ {
		pte := &as.ptes[pg]
		if pte.State != StateRemote {
			panic(fmt.Sprintf("%s: MarkZeroFill on page %d in state %v", as.who(), pg, pte.State))
		}
		pte.State = StateZeroFill
	}
}

// checkPTE validates one entry against the PTE state machine: a present
// or evicting page owns exactly one frame; a remote, zero-fill, or
// faulting page owns none and carries no stale accessed/dirty bits
// (dirty ⇒ present∨evicting, accessed ⇒ present∨evicting). Called from
// every state transition when built with -tags magecheck.
func (as *AddressSpace) checkPTE(page uint64) {
	pte := &as.ptes[page]
	switch pte.State {
	case StatePresent, StateEvicting:
		invariant.Assert(pte.Frame != buddy.NilFrame,
			"%s: page %d %v without a frame", as.who(), page, pte.State)
	default:
		invariant.Assert(pte.Frame == buddy.NilFrame,
			"%s: page %d %v owns frame %d", as.who(), page, pte.State, pte.Frame)
		invariant.Assert(!pte.Dirty, "%s: page %d dirty while %v", as.who(), page, pte.State)
		invariant.Assert(!pte.Accessed, "%s: page %d accessed while %v", as.who(), page, pte.State)
	}
	invariant.Assert(as.resident >= 0 && uint64(as.resident) <= as.numPages,
		"%s: resident count %d outside [0,%d]", as.who(), as.resident, as.numPages)
}

// WaitQueueFor exposes the PTE's wait queue length (tests only).
func (as *AddressSpace) WaitQueueFor(page uint64) int {
	if as.ptes[page].waiters == nil {
		return 0
	}
	return as.ptes[page].waiters.Len()
}
