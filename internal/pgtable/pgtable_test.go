package pgtable

import (
	"fmt"
	"math/rand"
	"testing"

	"mage/internal/buddy"
	"mage/internal/sim"
)

func newAS(model LockModel) (*sim.Engine, *AddressSpace) {
	eng := sim.NewEngine()
	as := New(eng, 128, model, 8, DefaultCosts())
	return eng, as
}

func allModels() []LockModel { return []LockModel{LockGlobal, LockSharded, LockPerPTE} }

func TestInitialStateAllRemote(t *testing.T) {
	_, as := newAS(LockGlobal)
	for pg := uint64(0); pg < as.NumPages(); pg++ {
		if as.PTEOf(pg).State != StateRemote {
			t.Fatalf("page %d initial state = %v", pg, as.PTEOf(pg).State)
		}
	}
	if as.Resident() != 0 {
		t.Errorf("Resident = %d", as.Resident())
	}
}

func TestFaultLifecycle(t *testing.T) {
	for _, model := range allModels() {
		eng, as := newAS(model)
		eng.Spawn("t", func(p *sim.Proc) {
			if as.HardwareAccess(5, false) {
				t.Errorf("[%v] access to remote page reported hit", model)
			}
			if d := as.BeginFault(p, 5); d != FaultFetch {
				t.Fatalf("[%v] BeginFault = %v, want FaultFetch", model, d)
			}
			if as.PTEOf(5).State != StateFaulting {
				t.Errorf("[%v] state = %v during fault", model, as.PTEOf(5).State)
			}
			as.CompleteFault(p, 5, 42)
			pte := as.PTEOf(5)
			if pte.State != StatePresent || pte.Frame != 42 || !pte.Accessed {
				t.Errorf("[%v] after fault: %+v", model, pte)
			}
			if as.Resident() != 1 {
				t.Errorf("[%v] Resident = %d", model, as.Resident())
			}
			if !as.HardwareAccess(5, true) {
				t.Errorf("[%v] present page missed", model)
			}
			if !as.PTEOf(5).Dirty {
				t.Errorf("[%v] write did not set dirty bit", model)
			}
		})
		eng.Run()
	}
}

func TestEvictionLifecycle(t *testing.T) {
	for _, model := range allModels() {
		eng, as := newAS(model)
		eng.Spawn("t", func(p *sim.Proc) {
			as.BeginFault(p, 7)
			as.CompleteFault(p, 7, 3)
			as.HardwareAccess(7, true)

			// First unmap attempt: accessed bit set -> second chance.
			if r := as.TryUnmap(p, 7, true); r.OK {
				t.Errorf("[%v] unmap succeeded despite accessed bit", model)
			}
			if as.PTEOf(7).Accessed {
				t.Errorf("[%v] second chance did not clear accessed bit", model)
			}
			// Second attempt succeeds and reports dirtiness.
			r := as.TryUnmap(p, 7, true)
			if !r.OK || r.Frame != 3 || !r.Dirty {
				t.Errorf("[%v] unmap result = %+v", model, r)
			}
			if as.PTEOf(7).State != StateEvicting {
				t.Errorf("[%v] state = %v", model, as.PTEOf(7).State)
			}
			as.CompleteEvict(p, 7)
			if as.PTEOf(7).State != StateRemote || as.Resident() != 0 {
				t.Errorf("[%v] after evict: %v resident=%d", model, as.PTEOf(7).State, as.Resident())
			}
		})
		eng.Run()
	}
}

func TestUnmapIgnoringAccessedBit(t *testing.T) {
	eng, as := newAS(LockPerPTE)
	eng.Spawn("t", func(p *sim.Proc) {
		as.BeginFault(p, 1)
		as.CompleteFault(p, 1, 9)
		// honorAccessed=false is the FIFO-queue (Mage^LNX) policy.
		if r := as.TryUnmap(p, 1, false); !r.OK {
			t.Error("unmap should succeed when accessed bit is ignored")
		}
	})
	eng.Run()
}

func TestUnmapNonPresentFails(t *testing.T) {
	eng, as := newAS(LockGlobal)
	eng.Spawn("t", func(p *sim.Proc) {
		if r := as.TryUnmap(p, 0, true); r.OK {
			t.Error("unmap of remote page succeeded")
		}
	})
	eng.Run()
}

func TestConcurrentFaultsDeduplicate(t *testing.T) {
	for _, model := range allModels() {
		eng, as := newAS(model)
		fetches := 0
		for i := 0; i < 10; i++ {
			eng.Spawn(fmt.Sprintf("t%d", i), func(p *sim.Proc) {
				switch as.BeginFault(p, 3) {
				case FaultFetch:
					fetches++
					p.Sleep(3900) // simulate RDMA read
					as.CompleteFault(p, 3, 77)
				case FaultAlreadyPresent:
					if as.PTEOf(3).State != StatePresent {
						t.Errorf("[%v] dedup waiter resumed with state %v",
							model, as.PTEOf(3).State)
					}
				}
			})
		}
		eng.Run()
		if fetches != 1 {
			t.Errorf("[%v] %d fetches for one page, want 1", model, fetches)
		}
		if as.DedupWaits.Value() != 9 {
			t.Errorf("[%v] DedupWaits = %d, want 9", model, as.DedupWaits.Value())
		}
	}
}

func TestFaultDuringEvictionWaitsThenRefetches(t *testing.T) {
	eng, as := newAS(LockPerPTE)
	var refetched bool
	eng.Spawn("evictor", func(p *sim.Proc) {
		as.BeginFault(p, 4)
		as.CompleteFault(p, 4, 11)
		r := as.TryUnmap(p, 4, false)
		if !r.OK {
			t.Fatal("unmap failed")
		}
		p.Sleep(5000) // writeback in flight
		as.CompleteEvict(p, 4)
	})
	eng.Spawn("app", func(p *sim.Proc) {
		p.Sleep(1000) // fault while eviction in flight
		if d := as.BeginFault(p, 4); d != FaultFetch {
			t.Errorf("disposition = %v, want FaultFetch after eviction completes", d)
		}
		if p.Now() < 5000 {
			t.Errorf("fault proceeded at %v, before eviction completed", p.Now())
		}
		as.CompleteFault(p, 4, 12)
		refetched = true
	})
	eng.Run()
	if !refetched {
		t.Fatal("app thread never refetched")
	}
	if as.PTEOf(4).Frame != 12 {
		t.Errorf("final frame = %d, want 12", as.PTEOf(4).Frame)
	}
}

func TestVMAMapAndFind(t *testing.T) {
	_, as := newAS(LockGlobal)
	as.Map(0, 50, "heap")
	as.Map(60, 128, "mmap")
	if v, ok := as.FindVMA(10); !ok || v.Name != "heap" {
		t.Errorf("FindVMA(10) = %v,%v", v, ok)
	}
	if v, ok := as.FindVMA(60); !ok || v.Name != "mmap" {
		t.Errorf("FindVMA(60) = %v,%v", v, ok)
	}
	if _, ok := as.FindVMA(55); ok {
		t.Error("FindVMA(55) found a VMA in a hole")
	}
}

func TestVMAOverlapPanics(t *testing.T) {
	_, as := newAS(LockGlobal)
	as.Map(0, 50, "a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	as.Map(49, 60, "b")
}

func TestCompleteFaultWrongStatePanics(t *testing.T) {
	eng, as := newAS(LockPerPTE)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	eng.Spawn("t", func(p *sim.Proc) {
		as.CompleteFault(p, 0, 1) // page is Remote, not Faulting
	})
	eng.Run()
}

func TestShardedLessContendedThanGlobal(t *testing.T) {
	run := func(model LockModel) int64 {
		eng := sim.NewEngine()
		as := New(eng, 1024, model, 16, DefaultCosts())
		for i := 0; i < 32; i++ {
			i := i
			eng.Spawn(fmt.Sprintf("t%d", i), func(p *sim.Proc) {
				rng := rand.New(rand.NewSource(int64(i)))
				for k := 0; k < 100; k++ {
					pg := uint64(rng.Intn(1024))
					if as.BeginFault(p, pg) == FaultFetch {
						p.Sleep(100)
						as.CompleteFault(p, pg, buddy.Frame(pg))
					}
				}
			})
		}
		eng.Run()
		return as.LockWaitNs()
	}
	global, sharded := run(LockGlobal), run(LockSharded)
	if sharded >= global {
		t.Errorf("sharded wait (%d) should be below global wait (%d)", sharded, global)
	}
}

func TestResidentNeverExceedsFaultedPages(t *testing.T) {
	eng, as := newAS(LockPerPTE)
	eng.Spawn("t", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(5))
		present := map[uint64]bool{}
		for i := 0; i < 2000; i++ {
			pg := uint64(rng.Intn(64))
			if present[pg] {
				if rng.Intn(2) == 0 {
					if r := as.TryUnmap(p, pg, false); r.OK {
						as.CompleteEvict(p, pg)
						delete(present, pg)
					}
				}
			} else {
				if as.BeginFault(p, pg) == FaultFetch {
					as.CompleteFault(p, pg, buddy.Frame(pg))
					present[pg] = true
				}
			}
			if as.Resident() != len(present) {
				t.Fatalf("op %d: Resident=%d, tracked=%d", i, as.Resident(), len(present))
			}
		}
	})
	eng.Run()
}
