package mage_test

import (
	"fmt"

	"mage"
)

// ExampleMustNewSystem runs a small deterministic workload on a Mage^LIB
// system and prints stable facts about the execution.
func ExampleMustNewSystem() {
	cfg := mage.MageLib(4, 2048, 1024) // 4 threads, 2048-page WSS, half local
	cfg.Sockets = 1
	cfg.CoresPerSocket = 8
	cfg.EvictorThreads = 2
	sys := mage.MustNewSystem(cfg)
	sys.Prepopulate(2048)

	// Each thread scans a quarter of the working set.
	streams := make([]mage.AccessStream, 4)
	for i := range streams {
		lo := uint64(i) * 512
		n := 0
		streams[i] = mage.FuncStream(func() (mage.Access, bool) {
			if n >= 512 {
				return mage.Access{}, false
			}
			a := mage.Access{Page: lo + uint64(n), Compute: 500}
			n++
			return a, true
		})
	}
	res := sys.Run(streams)

	fmt.Println("accesses:", res.TotalAccesses())
	fmt.Println("sync evictions:", res.Metrics.SyncEvicts)
	fmt.Println("deterministic:", res.Makespan > 0)
	// Output:
	// accesses: 2048
	// sync evictions: 0
	// deterministic: true
}

// ExamplePreset shows the five systems the evaluation compares.
func ExamplePreset() {
	for _, name := range []string{"ideal", "hermit", "dilos", "magelib", "magelnx"} {
		cfg, err := mage.Preset(name, 48, 1<<16, 1<<15)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: sync-eviction=%v pipelined=%v\n",
			cfg.Name, cfg.SyncEviction, cfg.Pipelined)
	}
	// Output:
	// Ideal: sync-eviction=false pipelined=false
	// Hermit: sync-eviction=true pipelined=false
	// DiLOS: sync-eviction=true pipelined=false
	// MageLib: sync-eviction=false pipelined=true
	// MageLnx: sync-eviction=false pipelined=true
}
