// Phase change: GUPS shifts its working set mid-run (80% region → 20%
// region). Sampled throughput shows existing systems stalling through the
// transition while MAGE recovers quickly — the paper's Fig 11 scenario.
package main

import (
	"fmt"
	"strings"

	"mage"
)

func main() {
	const threads = 24
	params := mage.GUPSParams{
		Pages: 24 << 10, UpdatesPerThread: 6000, PhaseSplit: 0.5,
		HotFrac: 0.8, Theta: 0.99, ComputePerUpdate: 250,
	}

	fmt.Println("GUPS with a working-set shift at the midpoint, 85% local memory")
	for _, preset := range []string{"hermit", "dilos", "magelib"} {
		w := mage.NewGUPS(params)
		local := int(float64(w.NumPages()) * 0.85)
		cfg, err := mage.Preset(preset, threads, w.NumPages(), local)
		if err != nil {
			panic(err)
		}
		sys := mage.MustNewSystem(cfg)
		sys.Prepopulate(int(w.NumPages()))
		res := sys.RunWithOptions(w.Streams(threads, 3), mage.RunOptions{
			SampleEvery: 250 * mage.Microsecond,
		})

		fmt.Printf("\n%s (makespan %.1f ms) — throughput over time:\n",
			cfg.Name, res.Makespan.Seconds()*1e3)
		printSparkline(res)
	}
	fmt.Println("\nEach bar is one sample window; the trough is the phase change,")
	fmt.Println("where the old working set must drain while the new one faults in.")
}

// printSparkline renders the sampled series as an ASCII bar chart.
func printSparkline(res mage.RunResult) {
	s := res.Series
	if s == nil || s.Len() == 0 {
		fmt.Println("  (no samples)")
		return
	}
	max := s.Max()
	if max <= 0 {
		return
	}
	const height = 8
	for level := height; level >= 1; level-- {
		var b strings.Builder
		threshold := max * float64(level) / height
		for i := 0; i < s.Len(); i++ {
			if s.V[i] >= threshold {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		fmt.Printf("  %7.2fM |%s\n", threshold/1e6, b.String())
	}
}
