// Quickstart: build a MAGE far-memory system, run PageRank with half the
// working set offloaded, and compare against Hermit.
package main

import (
	"fmt"

	"mage"
)

func main() {
	const (
		threads = 24
		offload = 0.5
	)
	params := mage.GapBSParams{
		Scale: 14, EdgeFactor: 8, Iterations: 2, BytesPerVertex: 64, Seed: 7,
	}

	fmt.Printf("PageRank over a Kronecker graph, %d threads, %.0f%% of memory remote\n\n",
		threads, offload*100)
	fmt.Printf("%-8s %12s %12s %12s %14s\n",
		"system", "runtime(ms)", "faults", "evictions", "p99 fault(µs)")

	for _, preset := range []string{"ideal", "hermit", "dilos", "magelib", "magelnx"} {
		w := mage.NewGapBS(params)
		local := int(float64(w.NumPages()) * (1 - offload))
		cfg, err := mage.Preset(preset, threads, w.NumPages(), local)
		if err != nil {
			panic(err)
		}
		sys := mage.MustNewSystem(cfg)
		sys.Prepopulate(int(w.NumPages())) // warm start: hot data loaded
		res := sys.Run(w.Streams(threads, 1))
		fmt.Printf("%-8s %12.2f %12d %12d %14.1f\n",
			cfg.Name,
			res.Makespan.Seconds()*1e3,
			res.Metrics.MajorFaults,
			res.Metrics.EvictedPages,
			float64(res.Metrics.FaultP99Ns)/1e3)
	}

	fmt.Println("\nMAGE's always-asynchronous eviction keeps the fault path free of")
	fmt.Println("synchronous stalls; Hermit and DiLOS fall back to inline eviction")
	fmt.Println("under pressure, which is what inflates their tails.")
}
