// Offload planning: how much memory can each system give up before
// violating a throughput SLO? This is the operator question Fig 1 answers
// — pick a tolerable drop, read off the offloadable fraction. It also
// demonstrates the real-network memory node: the far-memory pool the
// simulation models is served here by an actual TCP daemon, and the
// example verifies page round-trips through it.
package main

import (
	"fmt"
	"math/rand"

	"mage"
)

func main() {
	const (
		threads = 24
		sloDrop = 0.65 // tolerated throughput drop (generous: scaled-down runs pay steeper drops than the testbed)
	)
	params := mage.XSBenchParams{
		Gridpoints: 1 << 14, Nuclides: 32,
		LookupsPerThread: 2500, NuclidesPerLookup: 4,
	}

	fmt.Printf("XSBench, %d threads: max offloadable memory within a %.0f%% SLO\n\n",
		threads, sloDrop*100)

	for _, preset := range []string{"hermit", "dilos", "magelib"} {
		baseline := runAt(preset, threads, params, 0)
		best := 0.0
		for _, off := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8} {
			jph := runAt(preset, threads, params, off)
			if 1-jph/baseline <= sloDrop {
				best = off
			}
		}
		fmt.Printf("  %-8s can offload %.0f%% of the working set\n", preset, best*100)
	}

	// The far-memory pool as a real service: start the memory node, push
	// a page out, and fetch it back over TCP.
	fmt.Println("\nmemory node demo (real TCP):")
	node, err := mage.NewMemoryNode("127.0.0.1:0", 64<<20)
	if err != nil {
		panic(err)
	}
	defer node.Close()
	client, err := mage.DialMemoryNode(node.Addr())
	if err != nil {
		panic(err)
	}
	defer client.Close()
	region, err := client.Register(16 << 20)
	if err != nil {
		panic(err)
	}
	page := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(page)
	if err := client.Write(region, 8<<20, page); err != nil {
		panic(err)
	}
	back, err := client.Read(region, 8<<20, 4096)
	if err != nil {
		panic(err)
	}
	same := true
	for i := range page {
		if page[i] != back[i] {
			same = false
			break
		}
	}
	st, _ := client.Stat()
	fmt.Printf("  evicted one page to %s and faulted it back intact: %v\n", node.Addr(), same)
	fmt.Printf("  node stats: %d region(s), %d B read, %d B written\n",
		st.Regions, st.BytesRead, st.BytesWrite)
}

func runAt(preset string, threads int, params mage.XSBenchParams, off float64) float64 {
	w := mage.NewXSBench(params)
	total := w.NumPages()
	local := int(float64(total) * (1 - off))
	if off == 0 {
		local = int(total) + int(total)/6 + 4096
	}
	cfg, err := mage.Preset(preset, threads, total, local)
	if err != nil {
		panic(err)
	}
	sys := mage.MustNewSystem(cfg)
	sys.Prepopulate(int(total))
	res := sys.Run(w.Streams(threads, 1))
	return res.JobsPerHour()
}
