// Latency-critical serving: an open-loop memcached (Facebook USR mix,
// Zipf(0.99) keys) on far memory, sweeping offered load and reporting p99
// latency — the scenario of the paper's Fig 13.
package main

import (
	"fmt"

	"mage"
)

func main() {
	const (
		threads   = 24  // one NUMA socket, as in the paper
		localFrac = 0.5 // half the store offloaded
	)
	params := mage.MemcachedParams{
		Keys: 1 << 17, ValueBytes: 256, Theta: 0.99,
		GetFraction: 0.998, ComputePerOp: 1500,
	}

	fmt.Printf("memcached, %d server threads, %.0f%% local memory, USR mix\n\n",
		threads, localFrac*100)
	fmt.Printf("%-10s %-8s %12s %12s %12s\n",
		"load(Kops)", "system", "p50(µs)", "p99(µs)", "achieved")

	for _, load := range []float64{200e3, 600e3, 1200e3} {
		for _, preset := range []string{"hermit", "magelib"} {
			w := mage.NewMemcached(params)
			local := int(float64(w.NumPages()) * localFrac)
			cfg, err := mage.Preset(preset, threads, w.NumPages(), local)
			if err != nil {
				panic(err)
			}
			sys := mage.MustNewSystem(cfg)
			sys.Prepopulate(int(w.NumPages()))
			res := w.RunOpenLoop(sys, threads, load, 30*mage.Millisecond, 11)
			fmt.Printf("%-10.0f %-8s %12.1f %12.1f %12.0f\n",
				load/1e3, cfg.Name,
				float64(res.P50Ns)/1e3, float64(res.P99Ns)/1e3, res.AchievedOps)
		}
	}
	fmt.Println("\nMAGE holds the p99 flat as load grows because the fault path never")
	fmt.Println("runs eviction inline; the latency left over is network queueing.")
}
