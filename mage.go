// Package mage is a simulation-grade reproduction of "Scalable Far
// Memory: Balancing Faults and Evictions" (SOSP 2025): a page-based
// far-memory system built from three design principles — always-
// asynchronous decoupling of the fault-in and eviction paths, cross-batch
// pipelined eviction, and contention-avoiding data structures — together
// with the systems it is compared against (Hermit, DiLOS, and an
// analytical ideal baseline).
//
// Everything runs on a deterministic discrete-event simulation of the
// paper's testbed (dual-socket 56-core machine, 200 Gbps RDMA), so every
// experiment is reproducible bit-for-bit. See DESIGN.md for the
// substitution rationale and EXPERIMENTS.md for paper-vs-measured
// results.
//
// # Quick start
//
//	cfg := mage.MageLib(48, 1<<16, 1<<15) // threads, WSS pages, local frames
//	sys := mage.MustNewSystem(cfg)
//	w := mage.NewGapBS(mage.DefaultGapBSParams())
//	res := sys.Run(w.Streams(48, 1))
//	fmt.Println(res.OpsPerSec(), res.Metrics)
//
// Or regenerate a paper figure:
//
//	mage.RunExperiment(os.Stdout, "fig1", mage.QuickScale())
package mage

import (
	"io"

	"mage/internal/core"
	"mage/internal/experiments"
	"mage/internal/memnode"
	"mage/internal/sim"
	"mage/internal/workload"
)

// Core types, re-exported from the implementation packages.
type (
	// Config describes one far-memory system instance (machine shape,
	// path policies, data-structure designs).
	Config = core.Config
	// System is an assembled far-memory machine.
	System = core.System
	// Node is the substrate shared by co-located tenants: engine, NIC,
	// frame pool, global page accounting, and the eviction threads.
	Node = core.Node
	// Tenant is one application's slice of a Node: address space, core
	// affinity, and per-tenant metrics.
	Tenant = core.Tenant
	// TenantSpec describes one application co-located on a Node.
	TenantSpec = core.TenantSpec
	// Metrics is a measurement snapshot.
	Metrics = core.Metrics
	// RunResult is a completed workload execution.
	RunResult = core.RunResult
	// RunOptions tunes sampling and deadlines.
	RunOptions = core.RunOptions
	// Access is one page reference in an access stream.
	Access = core.Access
	// AccessStream generates a thread's accesses lazily.
	AccessStream = core.AccessStream
	// FuncStream adapts a closure to AccessStream.
	FuncStream = core.FuncStream
	// Thread drives custom request loops (see the memcached example).
	Thread = core.Thread
	// Time is virtual time in nanoseconds.
	Time = sim.Time
)

// Workload types.
type (
	// Workload produces per-thread access streams.
	Workload = workload.Workload
	// GapBSParams sizes the PageRank workload.
	GapBSParams = workload.GapBSParams
	// XSBenchParams sizes the Monte Carlo lookup workload.
	XSBenchParams = workload.XSBenchParams
	// SeqScanParams sizes the sequential scan.
	SeqScanParams = workload.SeqScanParams
	// ZipfParams sizes the closed-loop skewed-random workload.
	ZipfParams = workload.ZipfParams
	// GUPSParams sizes the phase-changing update workload.
	GUPSParams = workload.GUPSParams
	// MetisParams sizes the MapReduce workload.
	MetisParams = workload.MetisParams
	// MemcachedParams sizes the KV workload.
	MemcachedParams = workload.MemcachedParams
	// LatencyResult is an open-loop latency measurement.
	LatencyResult = workload.LatencyResult
	// Scale bundles experiment sizes.
	Scale = experiments.Scale
)

// System constructors.
var (
	// NewSystem builds a system from cfg (validating it).
	NewSystem = core.NewSystem
	// MustNewSystem is NewSystem that panics on invalid configs.
	MustNewSystem = core.MustNewSystem
	// NewNode builds a multi-tenant node: cfg describes the shared
	// substrate, specs the co-located applications. Run the tenants with
	// Node.RunTenants, one stream set per tenant.
	NewNode = core.NewNode
	// Preset returns a named system config: "ideal", "hermit", "dilos",
	// "magelib", "magelnx".
	Preset = core.Preset
	// Presets returns all five configs in figure order.
	Presets = core.Presets
	// Ideal, Hermit, DiLOS, MageLib and MageLnx build the individual
	// preset configurations.
	Ideal   = core.Ideal
	Hermit  = core.Hermit
	DiLOS   = core.DiLOS
	MageLib = core.MageLib
	MageLnx = core.MageLnx
)

// Workload constructors.
var (
	NewGapBS     = workload.NewGapBS
	NewXSBench   = workload.NewXSBench
	NewSeqScan   = workload.NewSeqScan
	NewZipf      = workload.NewZipf
	NewGUPS      = workload.NewGUPS
	NewMetis     = workload.NewMetis
	NewMemcached = workload.NewMemcached

	DefaultGapBSParams     = workload.DefaultGapBS
	DefaultXSBenchParams   = workload.DefaultXSBench
	DefaultSeqScanParams   = workload.DefaultSeqScan
	DefaultZipfParams      = workload.DefaultZipf
	DefaultGUPSParams      = workload.DefaultGUPS
	DefaultMetisParams     = workload.DefaultMetis
	DefaultMemcachedParams = workload.DefaultMemcached
)

// Experiment scales.
var (
	// QuickScale completes every experiment in seconds (tests, benches).
	QuickScale = experiments.Quick
	// FullScale is the CLI's larger sweep.
	FullScale = experiments.Full
)

// Experiments lists the available experiment IDs (fig1..fig18, table1,
// table2).
func Experiments() []string { return experiments.Names() }

// RunExperiment regenerates one of the paper's tables or figures and
// prints it to w.
func RunExperiment(w io.Writer, name string, sc Scale) error {
	r, err := experiments.Lookup(name)
	if err != nil {
		return err
	}
	for _, t := range r(sc) {
		t.Print(w)
	}
	return nil
}

// Far-memory node over a real network (the §5.2 memory-node daemon and
// its client, TCP substituting for RDMA).
type (
	// MemoryNode is the far-memory daemon.
	MemoryNode = memnode.Server
	// MemoryNodeClient talks to a MemoryNode.
	MemoryNodeClient = memnode.Client
	// MemoryNodeStats is the daemon's STAT response.
	MemoryNodeStats = memnode.Stats
)

var (
	// NewMemoryNode starts a daemon on addr serving capacity bytes.
	NewMemoryNode = memnode.NewServer
	// DialMemoryNode connects to a daemon.
	DialMemoryNode = memnode.Dial
)

// Durations re-exported for building streams.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)
